"""Compiled stencil layer: declarative kernel specs + pluggable backends.

The dycore's horizontal operators are all instances of one pattern —
gather fields through a padded index table, combine with precomputed
per-mesh weights, reduce — so instead of eager per-call NumPy they are
described once as :class:`StencilSpec`\\ s and *compiled* per mesh into
kernel plans, mirroring the GT4Py/Pace stencil-spec + backend split
("Productive Performance Engineering for Weather and Climate Modeling
with Python", PAPERS.md).  Two backends exist:

``reference``
    Today's eager NumPy expressions, verbatim.  Bitwise identical to the
    pre-refactor operators; the oracle every other backend is judged
    against, and the default.

``fused``
    Eliminates the per-call temporaries that make the reference path
    memory-bandwidth bound (Hoefler et al., "Towards Specialized
    Supercomputers for Climate Sciences"): gathers land in preallocated
    per-plan scratch via ``np.take(..., out=...)``, pad-zeroing is folded
    into the precomputed weights (pad lanes carry weight 0 instead of a
    scatter-mask pass), the area/count normalisations are folded into the
    gather weights, weighted reductions run as a single ``einsum``, and
    the 1-D flux divergence is rewritten from a padded gather into a
    ``np.bincount`` scatter-accumulate over precompiled flat index
    tables.  ``numexpr``/``numba`` are used when importable and degrade
    *silently* to pure NumPy when not (nothing here may ever require an
    install).

Backend contract
----------------
Each spec declares its fused-vs-reference contract: ``tolerance == 0.0``
means bitwise (``np.array_equal``; linear gather/arithmetic kernels whose
fused form performs the identical operations in the identical order), a
positive ``tolerance`` is a scaled-infinity-norm bound
``max|fused - ref| <= tolerance * max|ref|`` (kernels whose fused form
folds a normalisation into the weights or reorders a summation).  The
fused fast path covers float64 fields — the solver's native precision —
and silently delegates other dtypes to the reference kernels so the MIX
configurations keep their exact reference rounding.

Thread-safety: compilation is guarded by a module lock and plans are
**immutable after publish** — every index/weight array is built before
the plan is attached to the mesh, and per-dtype lookups never mutate
published state (exotic dtypes are computed fresh, uncached).  Fused
*scratch* buffers are single-consumer like the solver that owns the
mesh: one mesh = one solver stepping sequentially (the warm serve pool
hands each model to exactly one request at a time).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass

import numpy as np

from repro.grid.mesh import Mesh, PAD

# -- optional accelerators (never required, never installed here) ---------
try:  # pragma: no cover - exercised only where numexpr is installed
    import numexpr as _numexpr
except Exception:  # pragma: no cover
    _numexpr = None

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba
except Exception:  # pragma: no cover
    _numba = None

NUMEXPR_AVAILABLE = _numexpr is not None
NUMBA_AVAILABLE = _numba is not None


def _jit_enabled() -> bool:
    """Optional-accelerator master switch (``REPRO_STENCIL_JIT=0`` off)."""
    return os.environ.get("REPRO_STENCIL_JIT", "1") != "0"


#: Contract value meaning "fused must equal reference bitwise".
BITWISE = 0.0

#: Environment default for :func:`default_backend`.
BACKEND_ENV = "REPRO_STENCIL_BACKEND"


@dataclass(frozen=True)
class StencilSpec:
    """Declarative description of one horizontal operator.

    ``gathers``/``weights`` name the per-mesh index and weight tables the
    compiled plan materialises; ``arithmetic`` is the combine/reduce
    expression in index notation.  ``tolerance`` is the fused-backend
    contract (:data:`BITWISE` or a scaled-inf-norm bound).
    ``ref_passes``/``fused_passes`` count full memory passes over
    output-sized arrays per call — the per-kernel hook the performance
    model uses to credit the fused backend's temporary elimination.
    """

    name: str
    gathers: tuple[str, ...]
    weights: tuple[str, ...]
    arithmetic: str
    tolerance: float = BITWISE
    ref_passes: int = 2
    fused_passes: int = 2

    @property
    def bitwise(self) -> bool:
        return self.tolerance == BITWISE


#: The compiled stencil registry: every public operator in
#: :mod:`repro.dycore.operators`.
STENCILS: dict[str, StencilSpec] = {
    s.name: s
    for s in (
        StencilSpec(
            "divergence", ("cell_edges",), ("div_w", "cell_area"),
            "div_i = (1/A_i) sum_k F[ce(i,k)] * sign(i,k) * le(i,k)",
            tolerance=1e-12, ref_passes=5, fused_passes=2,
        ),
        StencilSpec(
            "gradient", ("edge_cells",), ("de",),
            "g_e = (psi[c2(e)] - psi[c1(e)]) / de_e",
            tolerance=BITWISE, ref_passes=3, fused_passes=2,
        ),
        StencilSpec(
            "curl", ("vertex_edges",), ("curl_w", "vertex_area"),
            "zeta_v = (1/A_v) sum_k u[ve(v,k)] * sign(v,k) * de(v,k)",
            tolerance=1e-12, ref_passes=4, fused_passes=2,
        ),
        StencilSpec(
            "cell_to_edge", ("edge_cells",), (),
            "f_e = 0.5 (psi[c1(e)] + psi[c2(e)])",
            tolerance=BITWISE, ref_passes=3, fused_passes=2,
        ),
        StencilSpec(
            "cell_to_edge_upwind", ("edge_cells",), (),
            "f_e = psi[c1] if u_e >= 0 else psi[c2]",
            tolerance=BITWISE, ref_passes=3, fused_passes=2,
        ),
        StencilSpec(
            "vertex_to_edge", ("edge_vertices",), (),
            "f_e = 0.5 (psi[v1(e)] + psi[v2(e)])",
            tolerance=BITWISE, ref_passes=3, fused_passes=2,
        ),
        StencilSpec(
            "vertex_to_cell", ("cell_vertices",), ("v2c_mask", "v2c_count"),
            "f_i = sum_k psi[cv(i,k)] m(i,k) / n_i",
            tolerance=1e-12, ref_passes=5, fused_passes=2,
        ),
        StencilSpec(
            "reconstruct_cell_vectors", ("cell_edges",), ("cell_recon",),
            "U_i = sum_k R(i,:,k) u[ce(i,k)]",
            tolerance=BITWISE, ref_passes=4, fused_passes=2,
        ),
        StencilSpec(
            "tangential_velocity", ("cell_edges", "edge_cells"),
            ("cell_recon", "edge_tangent"),
            "vt_e = 0.5 (U[c1] + U[c2]) . t_e",
            tolerance=BITWISE, ref_passes=5, fused_passes=3,
        ),
        StencilSpec(
            "kinetic_energy", ("cell_edges",), ("cell_recon",),
            "K_i = 0.5 |U_i|^2",
            tolerance=BITWISE, ref_passes=4, fused_passes=2,
        ),
        StencilSpec(
            "laplacian_cell", ("edge_cells", "cell_edges"),
            ("de", "div_w", "cell_area"),
            "lap = div(grad(psi))",
            tolerance=1e-11, ref_passes=8, fused_passes=4,
        ),
        StencilSpec(
            "laplacian_edge", ("cell_edges", "vertex_edges", "edge_cells",
                               "edge_vertices"),
            ("div_w", "curl_w", "cell_area", "vertex_area", "de", "le"),
            "lap = grad(div(u)) - curl(curl(u))",
            tolerance=1e-11, ref_passes=15, fused_passes=8,
        ),
    )
}

#: Composite dycore kernels (MAJOR_KERNELS names) -> constituent stencils,
#: for the performance model's per-kernel traffic hook.  Kernels absent
#: here (pure element-wise ones) see no stencil-layer traffic change.
KERNEL_STENCILS: dict[str, tuple[str, ...]] = {
    "divergence": ("divergence",),
    "calc_coriolis_term": ("curl", "vertex_to_edge", "tangential_velocity"),
    "tend_grad_ke_at_edge": ("kinetic_energy", "gradient"),
    "tracer_transport_hori_flux_limiter": (
        "cell_to_edge_upwind", "divergence", "cell_to_edge", "divergence",
    ),
}


def traffic_factor(kernel_name: str, backend: str) -> float:
    """Memory-traffic multiplier of ``kernel_name`` under ``backend``.

    The ratio of declared memory passes (fused vs reference) averaged
    over the kernel's constituent stencils; 1.0 for the reference
    backend and for kernels with no stencil constituents.
    """
    if backend != "fused":
        return 1.0
    names = KERNEL_STENCILS.get(kernel_name)
    if not names:
        return 1.0
    ratios = [STENCILS[n].fused_passes / STENCILS[n].ref_passes for n in names]
    return float(sum(ratios) / len(ratios))


# -- the shared per-mesh index/weight cache --------------------------------

_COMPILE_LOCK = threading.RLock()


class OperatorCache:
    """Precomputed index/weight structure for one mesh.

    Built **once under the compile lock** and immutable after publish:
    every array — including the per-dtype ``vertex_to_cell`` weights for
    the two dtypes the precision policies use — exists before the cache
    is attached to the mesh, so concurrent readers (``repro.serve``
    threads sharing a warm model's mesh) never observe a partial build.
    """

    __slots__ = (
        "cell_edges_idx", "cell_edges_pad", "cell_edges_valid", "div_w",
        "edge_gather_w",
        "vertex_edges_idx", "curl_w",
        "cell_vertices_idx", "cell_vertices_valid",
        "edge_c1", "edge_c2", "edge_v1", "edge_v2",
        "_v2c_weights",
    )

    def __init__(self, mesh: Mesh):
        ce = mesh.cell_edges
        self.cell_edges_idx = np.clip(ce, 0, None)
        self.cell_edges_pad = ce == PAD
        self.cell_edges_valid = ce >= 0
        le = np.where(ce >= 0, mesh.le[self.cell_edges_idx], 0.0)
        self.div_w = mesh.cell_edge_sign * le                 # (nc, D)
        # Pad-annihilating gather weight: 1.0 at live lanes, 0.0 at pads.
        # Multiplying the clamped gather by this replaces the old per-call
        # boolean-mask scatter (``out[pad] = 0``) with one vectorised
        # multiply; identical up to the sign of zero in pad lanes, which
        # no consumer observes (pad lanes also carry zero operator
        # weight downstream).
        self.edge_gather_w = self.cell_edges_valid.astype(np.float64)

        ve = mesh.vertex_edges
        self.vertex_edges_idx = np.clip(ve, 0, None)
        de = np.where(ve >= 0, mesh.de[self.vertex_edges_idx], 0.0)
        self.curl_w = mesh.vertex_edge_sign * de              # (nv, 3)

        cv = mesh.cell_vertices
        self.cell_vertices_idx = np.clip(cv, 0, None)
        self.cell_vertices_valid = cv >= 0

        # Contiguous copies of the hot endpoint columns (the sliced
        # views have stride 2, which slows fancy indexing).
        self.edge_c1 = np.ascontiguousarray(mesh.edge_cells[:, 0])
        self.edge_c2 = np.ascontiguousarray(mesh.edge_cells[:, 1])
        self.edge_v1 = np.ascontiguousarray(mesh.edge_vertices[:, 0])
        self.edge_v2 = np.ascontiguousarray(mesh.edge_vertices[:, 1])

        # dtype -> (mask, clamped count) for vertex_to_cell.  Built
        # EAGERLY for the dtypes the precision policies use, so the dict
        # is never mutated after __init__ returns (immutable-after-
        # publish; the old lazy per-call fill raced under repro.serve).
        self._v2c_weights: dict = {
            np.dtype(np.float64): self._build_v2c(np.dtype(np.float64)),
            np.dtype(np.float32): self._build_v2c(np.dtype(np.float32)),
        }

    def _build_v2c(self, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
        mask = self.cell_vertices_valid.astype(dtype)
        cnt = np.maximum(mask.sum(axis=1), 1.0)
        return (mask, cnt)

    def v2c_weights(self, dtype: np.dtype) -> tuple[np.ndarray, np.ndarray]:
        got = self._v2c_weights.get(np.dtype(dtype))
        if got is None:
            # Exotic dtype: compute fresh without mutating published
            # state (the cache must stay immutable after publish).
            return self._build_v2c(np.dtype(dtype))
        return got


# -- backend selection -----------------------------------------------------

def default_backend() -> str:
    """Process-wide default backend (``REPRO_STENCIL_BACKEND`` or
    ``reference``)."""
    return resolve_backend_name(os.environ.get(BACKEND_ENV) or "reference")


def resolve_backend_name(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown stencil backend {name!r}; known: {sorted(BACKENDS)}"
        )
    return name


def bind_stencil_backend(mesh: Mesh, backend: str | None) -> None:
    """Pin ``mesh``'s default backend (``None`` restores the env/global
    default).  Operators called without an explicit ``backend=`` use it."""
    if backend is None:
        mesh.__dict__.pop("_stencil_backend", None)
    else:
        mesh._stencil_backend = resolve_backend_name(backend)


def bound_backend(mesh: Mesh) -> str:
    """The backend a bare operator call on ``mesh`` dispatches to."""
    bound = getattr(mesh, "_stencil_backend", None)
    return bound if bound is not None else default_backend()


def mesh_cache(mesh: Mesh) -> OperatorCache:
    """The mesh's shared index/weight cache, compiled on first use
    under the module compile lock (double-checked publish)."""
    cache = getattr(mesh, "_op_cache", None)
    if cache is None:
        with _COMPILE_LOCK:
            cache = getattr(mesh, "_op_cache", None)
            if cache is None:
                cache = OperatorCache(mesh)
                mesh._op_cache = cache  # publish only when fully built
    return cache


#: Process-lifetime count of kernel-plan compilations (one per
#: (mesh, backend) pair ever compiled).  Monotone — callers measure
#: deltas rather than resetting, so concurrent measurements can only
#: over-count, never hide a compilation.
_plan_compiles = 0


def plan_compile_count() -> int:
    """Total stencil kernel-plan compilations in this process.

    The ensemble layer's sharing gate: a per-member loop on one warm
    model and an M-member vectorized batch must each cost exactly one
    plan compilation (delta == 1), never one per member.
    """
    return _plan_compiles


def compiled_kernels(mesh: Mesh, backend: str | None = None):
    """The compiled kernel plan of ``mesh`` for ``backend``.

    Plans are compiled once per (mesh, backend) under the compile lock
    and memoised on the mesh; repeated calls — and every operator call —
    return the same published plan object.
    """
    global _plan_compiles
    name = resolve_backend_name(backend) if backend else bound_backend(mesh)
    plans = getattr(mesh, "_stencil_plans", None)
    if plans is not None:
        plan = plans.get(name)
        if plan is not None:
            return plan
    with _COMPILE_LOCK:
        plans = getattr(mesh, "_stencil_plans", None)
        if plans is None:
            plans = {}
            mesh._stencil_plans = plans
        plan = plans.get(name)
        if plan is None:
            plan = BACKENDS[name](mesh, mesh_cache(mesh))
            plans[name] = plan  # publish only when fully built
            _plan_compiles += 1
            from repro.obs import get_metrics

            get_metrics().inc("stencil.plan_compilations")
    return plan


# -- reference backend -----------------------------------------------------

class ReferenceKernels:
    """The eager NumPy operators, verbatim — the bitwise oracle."""

    backend = "reference"

    def __init__(self, mesh: Mesh, cache: OperatorCache):
        self.mesh = mesh
        self.cache = cache

    # gather helper (pad lanes must read as zero)
    def gather_edges(self, edge_field: np.ndarray) -> np.ndarray:
        c = self.cache
        out = edge_field[c.cell_edges_idx]
        w = c.edge_gather_w
        out *= w.reshape(w.shape + (1,) * (out.ndim - 2))
        return out

    def divergence(self, flux_edge: np.ndarray) -> np.ndarray:
        gathered = self.gather_edges(flux_edge)          # (nc, D, ...)
        w = self.cache.div_w                             # (nc, D)
        extra = gathered.ndim - 2
        w = w.reshape(w.shape + (1,) * extra)
        acc = (gathered * w).sum(axis=1)
        area = self.mesh.cell_area.reshape((-1,) + (1,) * extra)
        return acc / area

    def gradient(self, cell_field: np.ndarray) -> np.ndarray:
        c = self.cache
        de = self.mesh.de.reshape((-1,) + (1,) * (cell_field.ndim - 1))
        return (cell_field[c.edge_c2] - cell_field[c.edge_c1]) / de

    def curl(self, u_edge: np.ndarray) -> np.ndarray:
        c = self.cache
        ue = u_edge[c.vertex_edges_idx]                  # (nv, 3, ...)
        w = c.curl_w
        extra = ue.ndim - 2
        w = w.reshape(w.shape + (1,) * extra)
        acc = (ue * w).sum(axis=1)
        area = self.mesh.vertex_area.reshape((-1,) + (1,) * extra)
        return acc / area

    def cell_to_edge(self, cell_field: np.ndarray) -> np.ndarray:
        c = self.cache
        return 0.5 * (cell_field[c.edge_c1] + cell_field[c.edge_c2])

    def cell_to_edge_upwind(
        self, cell_field: np.ndarray, u_edge: np.ndarray
    ) -> np.ndarray:
        c = self.cache
        return np.where(
            u_edge >= 0.0, cell_field[c.edge_c1], cell_field[c.edge_c2]
        )

    def vertex_to_edge(self, vertex_field: np.ndarray) -> np.ndarray:
        c = self.cache
        return 0.5 * (vertex_field[c.edge_v1] + vertex_field[c.edge_v2])

    def vertex_to_cell(self, vertex_field: np.ndarray) -> np.ndarray:
        c = self.cache
        vals = vertex_field[c.cell_vertices_idx]
        mask, cnt = c.v2c_weights(vals.dtype)
        extra = vals.ndim - 2
        mask = mask.reshape(mask.shape + (1,) * extra)
        s = (vals * mask).sum(axis=1)
        return s / cnt.reshape(cnt.shape + (1,) * extra)

    def reconstruct_cell_vectors(self, u_edge: np.ndarray) -> np.ndarray:
        c = self.cache
        ug = u_edge[c.cell_edges_idx]                    # (nc, D, ...)
        valid = c.cell_edges_valid
        ug = np.where(valid.reshape(valid.shape + (1,) * (ug.ndim - 2)), ug, 0.0)
        if ug.ndim == 2:
            return np.einsum("nik,nk->ni", self.mesh.cell_recon, ug)
        return np.einsum("nik,nkl->nil", self.mesh.cell_recon, ug)

    def tangential_velocity(self, u_edge: np.ndarray) -> np.ndarray:
        c = self.cache
        vec = self.reconstruct_cell_vectors(u_edge)      # (nc, 3[, nlev])
        ve = 0.5 * (vec[c.edge_c1] + vec[c.edge_c2])     # (ne, 3[, nlev])
        if ve.ndim == 2:
            return np.einsum("ej,ej->e", ve, self.mesh.edge_tangent)
        return np.einsum("ejl,ej->el", ve, self.mesh.edge_tangent)

    def kinetic_energy(self, u_edge: np.ndarray) -> np.ndarray:
        vec = self.reconstruct_cell_vectors(u_edge)
        if vec.ndim == 2:
            return 0.5 * np.einsum("ni,ni->n", vec, vec)
        return 0.5 * np.einsum("nil,nil->nl", vec, vec)

    def laplacian_cell(self, cell_field: np.ndarray) -> np.ndarray:
        return self.divergence(self.gradient(cell_field))

    def laplacian_edge(self, u_edge: np.ndarray) -> np.ndarray:
        c = self.cache
        div = self.divergence(u_edge)
        zeta = self.curl(u_edge)
        grad_div = self.gradient(div)
        le = self.mesh.le.reshape((-1,) + (1,) * (u_edge.ndim - 1))
        curl_zeta = (zeta[c.edge_v2] - zeta[c.edge_v1]) / le
        return grad_div - curl_zeta


# -- fused backend ---------------------------------------------------------

class FusedKernels(ReferenceKernels):
    """Temporary-eliminating backend: folded weights, ``out=`` scratch,
    single-``einsum`` reductions, ``bincount`` scatter-accumulate.

    The fast path covers float64 fields; other dtypes delegate to the
    inherited reference kernels so MIX precision keeps reference
    rounding exactly.  Scratch buffers are compiled per (name, shape,
    dtype) and are single-consumer (one mesh = one sequential solver).
    """

    backend = "fused"

    def __init__(self, mesh: Mesh, cache: OperatorCache):
        super().__init__(mesh, cache)
        # Folded weights: normalisation baked into the gather weight so
        # the weighted reduction is one einsum with no divide pass.
        self.div_w_fold = cache.div_w / mesh.cell_area[:, None]
        self.curl_w_fold = cache.curl_w / mesh.vertex_area[:, None]
        mask, cnt = cache.v2c_weights(np.dtype(np.float64))
        self.v2c_w_fold = mask / cnt[:, None]
        self.inv_cell_area = 1.0 / mesh.cell_area
        self.de_col = mesh.de[:, None]
        self.le_col = mesh.le[:, None]
        # Flat scatter-index tables of the bincount divergence, per
        # trailing length; {L: (flat_c1, flat_c2)} built under the plan
        # lock and published whole.
        self._flat_idx: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._scratch: dict[tuple, np.ndarray] = {}
        self._lock = threading.Lock()
        self._use_numexpr = NUMEXPR_AVAILABLE and _jit_enabled()
        self._div1d_jit = self._compile_div1d() if (
            NUMBA_AVAILABLE and _jit_enabled()
        ) else None

    # -- compiled resources ------------------------------------------------
    def _buf(self, name: str, shape: tuple, dtype=np.float64) -> np.ndarray:
        key = (name, shape, np.dtype(dtype))
        buf = self._scratch.get(key)
        if buf is None:
            with self._lock:
                buf = self._scratch.get(key)
                if buf is None:
                    buf = np.empty(shape, dtype=dtype)
                    self._scratch[key] = buf
        return buf

    def _flat(self, L: int) -> tuple[np.ndarray, np.ndarray]:
        got = self._flat_idx.get(L)
        if got is None:
            with self._lock:
                got = self._flat_idx.get(L)
                if got is None:
                    lanes = np.arange(L)
                    c = self.cache
                    got = (
                        (c.edge_c1[:, None] * L + lanes).ravel(),
                        (c.edge_c2[:, None] * L + lanes).ravel(),
                    )
                    self._flat_idx[L] = got
        return got

    def _compile_div1d(self):  # pragma: no cover - needs numba installed
        """JIT the 1-D edge->cell scatter-accumulate when numba exists."""
        c1, c2 = self.cache.edge_c1, self.cache.edge_c2
        le, inv_area, nc = self.mesh.le, self.inv_cell_area, self.mesh.nc

        @_numba.njit(cache=False)
        def div1d(flux):
            acc = np.zeros(nc)
            for e in range(flux.shape[0]):
                f = flux[e] * le[e]
                acc[c1[e]] += f
                acc[c2[e]] -= f
            return acc * inv_area

        return div1d

    @staticmethod
    def _fast(*fields) -> bool:
        """The fused fast path handles float64; else fall back."""
        return all(
            f.dtype == np.float64 and f.ndim <= 2 for f in fields
        )

    def _take(self, field, idx, name):
        out = self._buf(name, idx.shape + field.shape[1:], field.dtype)
        np.take(field, idx, axis=0, out=out, mode="clip")
        return out

    # -- kernels -----------------------------------------------------------
    def gather_edges(self, edge_field: np.ndarray) -> np.ndarray:
        # Same pad-weight fold as reference, but gathered into scratch;
        # returns a fresh array (callers may keep it).
        if not self._fast(edge_field):
            return super().gather_edges(edge_field)
        c = self.cache
        g = self._take(edge_field, c.cell_edges_idx, "gather_edges")
        w = c.edge_gather_w
        return g * w.reshape(w.shape + (1,) * (g.ndim - 2))

    def divergence(self, flux_edge: np.ndarray) -> np.ndarray:
        if not self._fast(flux_edge):
            return super().divergence(flux_edge)
        if flux_edge.ndim == 1:
            # Scatter-accumulate form: each edge pushes +-F*le to its two
            # cells; np.bincount replaces the padded gather entirely.
            if self._div1d_jit is not None:  # pragma: no cover
                return self._div1d_jit(flux_edge)
            nc = self.mesh.nc
            ebuf = self._buf("div_ebuf", flux_edge.shape)
            np.multiply(flux_edge, self.mesh.le, out=ebuf)
            acc = np.bincount(self.cache.edge_c1, weights=ebuf, minlength=nc)
            acc -= np.bincount(self.cache.edge_c2, weights=ebuf, minlength=nc)
            acc *= self.inv_cell_area
            return acc
        g = self._take(flux_edge, self.cache.cell_edges_idx, "div_gather")
        return np.einsum("ndl,nd->nl", g, self.div_w_fold)

    def gradient(self, cell_field: np.ndarray) -> np.ndarray:
        if not self._fast(cell_field):
            return super().gradient(cell_field)
        c = self.cache
        a = self._take(cell_field, c.edge_c2, "grad_a")
        b = self._take(cell_field, c.edge_c1, "grad_b")
        out = np.empty_like(a)
        np.subtract(a, b, out=out)
        de = self.mesh.de if out.ndim == 1 else self.de_col
        np.divide(out, de, out=out)
        return out

    def curl(self, u_edge: np.ndarray) -> np.ndarray:
        if not self._fast(u_edge):
            return super().curl(u_edge)
        g = self._take(u_edge, self.cache.vertex_edges_idx, "curl_gather")
        if g.ndim == 2:
            return np.einsum("nd,nd->n", g, self.curl_w_fold)
        return np.einsum("ndl,nd->nl", g, self.curl_w_fold)

    def cell_to_edge(self, cell_field: np.ndarray) -> np.ndarray:
        if not self._fast(cell_field):
            return super().cell_to_edge(cell_field)
        c = self.cache
        a = self._take(cell_field, c.edge_c1, "c2e_a")
        b = self._take(cell_field, c.edge_c2, "c2e_b")
        out = np.empty_like(a)
        np.add(a, b, out=out)
        out *= 0.5
        return out

    def cell_to_edge_upwind(
        self, cell_field: np.ndarray, u_edge: np.ndarray
    ) -> np.ndarray:
        if not self._fast(cell_field, u_edge):
            return super().cell_to_edge_upwind(cell_field, u_edge)
        c = self.cache
        a = self._take(cell_field, c.edge_c1, "up_a")
        b = self._take(cell_field, c.edge_c2, "up_b")
        return np.where(u_edge >= 0.0, a, b)

    def vertex_to_edge(self, vertex_field: np.ndarray) -> np.ndarray:
        if not self._fast(vertex_field):
            return super().vertex_to_edge(vertex_field)
        c = self.cache
        a = self._take(vertex_field, c.edge_v1, "v2e_a")
        b = self._take(vertex_field, c.edge_v2, "v2e_b")
        out = np.empty_like(a)
        np.add(a, b, out=out)
        out *= 0.5
        return out

    def vertex_to_cell(self, vertex_field: np.ndarray) -> np.ndarray:
        if not self._fast(vertex_field):
            return super().vertex_to_cell(vertex_field)
        g = self._take(vertex_field, self.cache.cell_vertices_idx, "v2c")
        if g.ndim == 2:
            return np.einsum("nd,nd->n", g, self.v2c_w_fold)
        return np.einsum("ndl,nd->nl", g, self.v2c_w_fold)

    def reconstruct_cell_vectors(self, u_edge: np.ndarray) -> np.ndarray:
        if not self._fast(u_edge):
            return super().reconstruct_cell_vectors(u_edge)
        # cell_recon is zero at invalid lanes (checked at compile), so
        # the reference's where-mask pass is redundant: 0-weight lanes
        # annihilate the clamped gather's garbage.
        g = self._take(u_edge, self.cache.cell_edges_idx, "recon")
        if g.ndim == 2:
            return np.einsum("nik,nk->ni", self.mesh.cell_recon, g)
        return np.einsum("nik,nkl->nil", self.mesh.cell_recon, g)

    def tangential_velocity(self, u_edge: np.ndarray) -> np.ndarray:
        if not self._fast(u_edge):
            return super().tangential_velocity(u_edge)
        c = self.cache
        vec = self.reconstruct_cell_vectors(u_edge)
        a = self._take(vec, c.edge_c1, "tang_a")
        b = self._take(vec, c.edge_c2, "tang_b")
        ve = self._buf("tang_ve", a.shape)
        np.add(a, b, out=ve)
        ve *= 0.5
        if ve.ndim == 2:
            return np.einsum("ej,ej->e", ve, self.mesh.edge_tangent)
        return np.einsum("ejl,ej->el", ve, self.mesh.edge_tangent)

    def laplacian_edge(self, u_edge: np.ndarray) -> np.ndarray:
        if not self._fast(u_edge):
            return super().laplacian_edge(u_edge)
        c = self.cache
        div = self.divergence(u_edge)
        zeta = self.curl(u_edge)
        grad_div = self.gradient(div)
        za = self._take(zeta, c.edge_v2, "lape_a")
        zb = self._take(zeta, c.edge_v1, "lape_b")
        le = self.mesh.le if u_edge.ndim == 1 else self.le_col
        if self._use_numexpr:  # pragma: no cover - needs numexpr
            out = np.empty_like(grad_div)
            _numexpr.evaluate(
                "grad_div - (za - zb) / le",
                local_dict={"grad_div": grad_div, "za": za, "zb": zb,
                            "le": np.broadcast_to(le, za.shape)},
                out=out,
            )
            return out
        cz = np.empty_like(grad_div)
        np.subtract(za, zb, out=cz)
        np.divide(cz, le, out=cz)
        np.subtract(grad_div, cz, out=cz)
        return cz


#: Registered backends (name -> plan class).
BACKENDS: dict[str, type] = {
    "reference": ReferenceKernels,
    "fused": FusedKernels,
}
