"""Tests of the vertical coordinate, thermodynamics, and the HEVI
implicit solver."""

import numpy as np
import pytest

from repro.constants import GRAVITY, P0, R_DRY
from repro.dycore.hevi import (
    GAMMA,
    acoustic_timescale,
    discrete_balanced_phi,
    hydrostatic_residual,
    implicit_w_solve,
    pressure_from_state,
    thomas_solve,
)
from repro.dycore.vertical import (
    VerticalCoordinate,
    exner,
    geopotential_interfaces,
    temperature_from_theta,
    theta_from_temperature,
)


class TestVerticalCoordinate:
    def test_uniform_levels(self):
        vc = VerticalCoordinate.uniform(10)
        assert vc.nlev == 10
        assert vc.sigma_interfaces[0] == 0.0
        assert vc.sigma_interfaces[-1] == 1.0
        np.testing.assert_allclose(vc.dsigma, 0.1)

    def test_stretched_levels_concentrate_near_surface(self):
        vc = VerticalCoordinate.stretched(10)
        ds = vc.dsigma
        assert ds[-1] > ds[0]            # thickest sigma at the bottom? no:
        # power stretching: small sigma increments near the top.
        assert ds[0] < ds[-1]

    def test_pressure_interfaces_bracket(self):
        vc = VerticalCoordinate.uniform(5)
        ps = np.array([1.0e5, 9.8e4])
        p = vc.pressure_interfaces(ps)
        np.testing.assert_allclose(p[:, 0], vc.ptop)
        np.testing.assert_allclose(p[:, -1], ps)
        assert np.all(np.diff(p, axis=1) > 0)

    def test_dpi_sums_to_column_mass(self):
        vc = VerticalCoordinate.stretched(8)
        ps = np.array([1.0e5])
        np.testing.assert_allclose(vc.dpi(ps).sum(), ps[0] - vc.ptop)

    def test_paper_model_top(self):
        """Model top kept at 2.25 hPa (~40 km), section 4.4."""
        assert VerticalCoordinate.uniform(30).ptop == 225.0


class TestThermodynamics:
    def test_exner_at_reference(self):
        assert exner(P0) == 1.0

    def test_theta_temperature_roundtrip(self):
        p = np.array([5.0e4, 8.0e4])
        t = np.array([250.0, 280.0])
        theta = theta_from_temperature(t, p)
        np.testing.assert_allclose(temperature_from_theta(theta, p), t)

    def test_geopotential_monotone_and_anchored(self):
        vc = VerticalCoordinate.uniform(10)
        ps = np.full(3, 1.0e5)
        p_int = vc.pressure_interfaces(ps)
        theta = np.full((3, 10), 300.0)
        phi = geopotential_interfaces(np.zeros(3), theta, p_int)
        np.testing.assert_allclose(phi[:, -1], 0.0)
        assert np.all(np.diff(phi, axis=1) < 0)   # decreasing downward index
        # Scale height sanity: isothermal-ish atmosphere tops out ~30-60 km.
        assert 25e3 < phi[:, 0].max() / GRAVITY < 70e3


class TestThomasSolver:
    def test_matches_dense_solve(self):
        rng = np.random.default_rng(0)
        ncol, n = 7, 12
        A = rng.uniform(-0.3, -0.1, (ncol, n))
        C = rng.uniform(-0.3, -0.1, (ncol, n))
        B = 1.0 + np.abs(A) + np.abs(C)      # diagonally dominant
        rhs = rng.normal(size=(ncol, n))
        x = thomas_solve(A, B, C, rhs)
        for c in range(ncol):
            M = np.diag(B[c])
            M += np.diag(A[c, 1:], -1)
            M += np.diag(C[c, :-1], 1)
            np.testing.assert_allclose(x[c], np.linalg.solve(M, rhs[c]), rtol=1e-10)

    def test_identity_system(self):
        rhs = np.arange(12.0).reshape(3, 4)
        x = thomas_solve(np.zeros((3, 4)), np.ones((3, 4)), np.zeros((3, 4)), rhs)
        np.testing.assert_allclose(x, rhs)


def _column_state(nc=5, nlev=12, t0=300.0, perturb=0.0, seed=0):
    vc = VerticalCoordinate.uniform(nlev)
    ps = np.full(nc, P0)
    dpi = vc.dpi(ps)
    p_mid = vc.pressure_mid(ps)
    theta = theta_from_temperature(np.full((nc, nlev), t0), p_mid)
    if perturb:
        rng = np.random.default_rng(seed)
        theta = theta + perturb * rng.normal(size=theta.shape)
    phi = discrete_balanced_phi(dpi, theta, np.zeros(nc), vc.ptop)
    w = np.zeros((nc, nlev + 1))
    return vc, dpi, theta, phi, w


class TestHEVISolver:
    def test_balanced_state_is_fixed_point(self):
        _, dpi, theta, phi, w = _column_state()
        res = hydrostatic_residual(dpi, phi, theta)
        assert np.abs(res).max() < 1e-12
        w2, phi2 = implicit_w_solve(w, phi, dpi, theta, dt=60.0)
        assert np.abs(w2).max() < 1e-10
        np.testing.assert_allclose(phi2, phi, rtol=1e-12)

    def test_perturbation_decays(self):
        """Off-centred implicit damping kills acoustic oscillations."""
        _, dpi, theta, phi, w = _column_state()
        phi_pert = phi.copy()
        phi_pert[:, 5] += 200.0              # squeeze a layer
        amp0 = None
        for step in range(60):
            w, phi_pert = implicit_w_solve(w, phi_pert, dpi, theta, dt=30.0)
            if step == 0:
                amp0 = np.abs(w).max()
        assert np.abs(w).max() < 0.05 * amp0

    def test_boundary_w_zero(self):
        _, dpi, theta, phi, w = _column_state(perturb=2.0)
        w2, _ = implicit_w_solve(w, phi, dpi, theta, dt=60.0)
        np.testing.assert_array_equal(w2[:, 0], 0.0)
        np.testing.assert_array_equal(w2[:, -1], 0.0)

    def test_stable_at_large_timestep(self):
        """HEVI point: dt far above the acoustic limit stays bounded."""
        _, dpi, theta, phi, w = _column_state(perturb=1.0)
        dphi = phi[:, :-1] - phi[:, 1:]
        dt_acoustic = acoustic_timescale(theta, dphi)
        dt = 50.0 * dt_acoustic
        for _ in range(20):
            w, phi = implicit_w_solve(w, phi, dpi, theta, dt=dt)
        assert np.isfinite(w).all()
        assert np.abs(w).max() < 50.0

    def test_pressure_from_state_hydrostatic_limit(self):
        _, dpi, theta, phi, _ = _column_state()
        dphi = phi[:, :-1] - phi[:, 1:]
        p = pressure_from_state(dpi, dphi, theta)
        vc = VerticalCoordinate.uniform(12)
        p_expected = vc.pressure_mid(np.full(5, P0))
        np.testing.assert_allclose(p, p_expected, rtol=2e-3)

    def test_gamma_value(self):
        assert GAMMA == pytest.approx(1004.64 / (1004.64 - 287.04))

    def test_too_few_layers_rejected(self):
        with pytest.raises(ValueError):
            implicit_w_solve(
                np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 1)),
                np.zeros((2, 1)), 10.0,
            )


class TestDiscreteBalance:
    def test_balanced_phi_positive_thickness(self):
        _, dpi, theta, phi, _ = _column_state(perturb=5.0)
        assert np.all(np.diff(phi, axis=1) < 0)

    def test_balance_residual_zero_for_any_theta(self):
        rng = np.random.default_rng(42)
        nlev = 10
        vc = VerticalCoordinate.uniform(nlev)
        ps = np.full(4, P0) * rng.uniform(0.95, 1.05, 4)
        dpi = vc.dpi(ps)
        theta = 300.0 + 30.0 * rng.random((4, nlev))
        phi = discrete_balanced_phi(dpi, theta, np.zeros(4), vc.ptop)
        res = hydrostatic_residual(dpi, phi, theta)
        assert np.abs(res).max() < 1e-10
