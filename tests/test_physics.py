"""Tests of the conventional physics suite: every scheme's invariants
plus the assembled column driver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CP_DRY, GRAVITY, LATENT_HEAT_VAP, SOLAR_CONSTANT
from repro.dycore.state import tropical_profile_state
from repro.dycore.vertical import VerticalCoordinate, exner
from repro.grid.mesh import build_mesh
from repro.physics.column import PhysicsConfig, PhysicsSuite
from repro.physics.convection import convective_adjustment, parcel_cape
from repro.physics.microphysics import kessler_microphysics
from repro.physics.pbl import pbl_diffusion
from repro.physics.radiation import RadiationScheme, cosine_solar_zenith
from repro.physics.surface import (
    SurfaceModel,
    idealized_land_mask,
    idealized_sst,
    saturation_mixing_ratio,
    saturation_vapor_pressure,
)


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(2)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.stretched(8)


def _columns(mesh, vc, t0=300.0):
    st = tropical_profile_state(mesh, vc, t0)
    p = st.p_mid()
    ex = exner(p)
    return st, st.dpi(), p, ex, st.theta * ex


class TestSaturation:
    def test_es_at_freezing(self):
        assert saturation_vapor_pressure(273.15) == pytest.approx(610.78)

    def test_es_monotone_in_t(self):
        t = np.linspace(230.0, 320.0, 50)
        assert np.all(np.diff(saturation_vapor_pressure(t)) > 0)

    def test_qsat_decreases_with_pressure(self):
        q1 = saturation_mixing_ratio(280.0, 7.0e4)
        q2 = saturation_mixing_ratio(280.0, 1.0e5)
        assert q1 > q2

    def test_qsat_magnitude(self):
        # ~23 g/kg at 300K, 1000 hPa — textbook value.
        q = saturation_mixing_ratio(300.0, 1.0e5)
        assert 0.020 < q < 0.026


class TestRadiation:
    def test_energy_bounds(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rad = RadiationScheme()
        coszen = cosine_solar_zenith(mesh.cell_lat, mesh.cell_lon, 0.0)
        res = rad.compute(
            temp, st.tracers["qv"], st.tracers["qc"], dpi,
            np.full(mesh.nc, 300.0), coszen, np.full(mesh.nc, 0.1),
        )
        assert np.all(res.gsw >= 0.0)
        assert np.all(res.gsw <= SOLAR_CONSTANT + 1e-9)
        assert np.all(res.glw > 0.0)
        assert np.all(res.olr > 0.0)

    def test_night_side_dark(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rad = RadiationScheme()
        res = rad.compute(
            temp, st.tracers["qv"], st.tracers["qc"], dpi,
            np.full(mesh.nc, 300.0), np.zeros(mesh.nc), np.full(mesh.nc, 0.1),
        )
        np.testing.assert_allclose(res.gsw, 0.0, atol=1e-9)

    def test_clouds_dim_the_surface(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rad = RadiationScheme()
        cz = np.full(mesh.nc, 0.8)
        clear = rad.compute(temp, st.tracers["qv"], np.zeros_like(temp), dpi,
                            np.full(mesh.nc, 300.0), cz, np.full(mesh.nc, 0.1))
        qc = np.full_like(temp, 2e-4)
        cloudy = rad.compute(temp, st.tracers["qv"], qc, dpi,
                             np.full(mesh.nc, 300.0), cz, np.full(mesh.nc, 0.1))
        assert cloudy.gsw.mean() < 0.8 * clear.gsw.mean()
        # Clouds also increase downward longwave (greenhouse).
        assert cloudy.glw.mean() > clear.glw.mean()

    def test_moist_columns_radiate_more_downward_lw(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rad = RadiationScheme()
        dry = rad.compute(temp, st.tracers["qv"] * 0.1, st.tracers["qc"], dpi,
                          np.full(mesh.nc, 300.0), np.zeros(mesh.nc),
                          np.full(mesh.nc, 0.1))
        wet = rad.compute(temp, st.tracers["qv"], st.tracers["qc"], dpi,
                          np.full(mesh.nc, 300.0), np.zeros(mesh.nc),
                          np.full(mesh.nc, 0.1))
        assert wet.glw.mean() > dry.glw.mean()

    def test_coszen_geometry(self):
        lat = np.array([0.0, np.pi / 2, -np.pi / 2])
        lon = np.zeros(3)
        # Noon at lon=0 is time 43200 with the hour-angle convention.
        cz = cosine_solar_zenith(lat, lon, 43200.0, day_of_year=81.0)
        assert cz[0] == pytest.approx(1.0, abs=0.02)    # equator noon
        assert cz[1] < 0.15 and cz[2] < 0.15            # poles


class TestMicrophysics:
    def test_supersaturation_condenses_and_warms(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 1.1
        res = kessler_microphysics(temp, qv, np.zeros_like(qv), np.zeros_like(qv),
                                   p, dpi, ex, 600.0)
        assert res.dqv.min() < 0.0
        assert (res.dtheta * ex)[res.dqv < 0].max() > 0.0

    def test_water_conservation(self, mesh, vc):
        """Column water change = -precipitation, exactly."""
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rng = np.random.default_rng(0)
        qv = saturation_mixing_ratio(temp, p) * rng.uniform(0.7, 1.2, temp.shape)
        qc = rng.uniform(0.0, 1e-3, temp.shape)
        qr = rng.uniform(0.0, 1e-3, temp.shape)
        dt = 600.0
        res = kessler_microphysics(temp, qv, qc, qr, p, dpi, ex, dt)
        dwater = ((res.dqv + res.dqc + res.dqr) * dpi).sum(axis=1) / GRAVITY
        np.testing.assert_allclose(dwater, -res.precip_rate, rtol=1e-8, atol=1e-15)

    def test_moist_enthalpy_conserved_without_sedimentation(self, mesh, vc):
        """cp*dT + L*dqv = 0 per layer for phase changes."""
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 1.05
        res = kessler_microphysics(temp, qv, np.zeros_like(qv), np.zeros_like(qv),
                                   p, dpi, ex, 600.0)
        enthalpy = CP_DRY * res.dtheta * ex + LATENT_HEAT_VAP * res.dqv
        np.testing.assert_allclose(enthalpy, 0.0, atol=1e-8)

    def test_no_negative_species(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        rng = np.random.default_rng(1)
        qv = saturation_mixing_ratio(temp, p) * rng.uniform(0.3, 1.3, temp.shape)
        qc = rng.uniform(0.0, 2e-3, temp.shape)
        qr = rng.uniform(0.0, 2e-3, temp.shape)
        dt = 600.0
        res = kessler_microphysics(temp, qv, qc, qr, p, dpi, ex, dt)
        assert np.all(qv + dt * res.dqv >= -1e-12)
        assert np.all(qc + dt * res.dqc >= -1e-12)
        assert np.all(qr + dt * res.dqr >= -1e-12)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_conservation_random(self, seed):
        rng = np.random.default_rng(seed)
        nc, nlev = 30, 6
        p = np.linspace(2e4, 1e5, nlev)[None, :] * np.ones((nc, 1))
        dpi = np.full((nc, nlev), 1e4)
        ex = exner(p)
        temp = rng.uniform(230.0, 310.0, (nc, nlev))
        qv = saturation_mixing_ratio(temp, p) * rng.uniform(0.0, 1.5, (nc, nlev))
        qc = rng.uniform(0.0, 3e-3, (nc, nlev))
        qr = rng.uniform(0.0, 3e-3, (nc, nlev))
        res = kessler_microphysics(temp, qv, qc, qr, p, dpi, ex, 300.0)
        dwater = ((res.dqv + res.dqc + res.dqr) * dpi).sum(axis=1) / GRAVITY
        np.testing.assert_allclose(dwater, -res.precip_rate, rtol=1e-6, atol=1e-13)
        assert np.all(res.precip_rate >= 0.0)


class TestConvection:
    def test_stable_dry_column_inactive(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = st.tracers["qv"] * 0.05        # very dry
        res = convective_adjustment(temp, qv, p, dpi, ex, 600.0)
        assert not res.active.any()
        np.testing.assert_array_equal(res.precip_rate, 0.0)

    def test_moist_unstable_column_rains(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 0.95
        res = convective_adjustment(temp, qv, p, dpi, ex, 600.0)
        assert res.active.any()
        assert res.precip_rate.max() > 0.0

    def test_energy_closure_exact(self, mesh, vc):
        """Column enthalpy change equals latent heat of the rain."""
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 0.95
        dt = 600.0
        res = convective_adjustment(temp, qv, p, dpi, ex, dt)
        dh = (CP_DRY * res.dtheta * ex * dpi).sum(axis=1) / GRAVITY
        lh = LATENT_HEAT_VAP * res.precip_rate
        np.testing.assert_allclose(dh, lh, rtol=1e-10, atol=1e-12)

    def test_never_negative_humidity(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 0.95
        dt = 600.0
        res = convective_adjustment(temp, qv, p, dpi, ex, dt)
        assert np.all(qv + dt * res.dqv >= -1e-15)

    def test_cape_positive_for_warm_moist_surface(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        qv = saturation_mixing_ratio(temp, p) * 0.9
        cape = parcel_cape(temp, qv, p, dpi, ex)
        assert cape.max() > 100.0


class TestPBL:
    def test_conserves_column_theta_without_flux(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        res = pbl_diffusion(
            st.theta, st.tracers["qv"], dpi, p, temp,
            np.zeros(mesh.nc), np.zeros(mesh.nc),
            np.full(mesh.nc, 5.0), ex[:, -1], 600.0,
        )
        col = (res.dtheta * dpi).sum(axis=1)
        np.testing.assert_allclose(col, 0.0, atol=1e-10 * dpi.sum(axis=1).mean())

    def test_surface_heating_enters_column(self, mesh, vc):
        """The theta budget closes exactly against the surface source:
        cp * ex_sfc * d/dt(column theta mass) == SHF."""
        st, dpi, p, ex, temp = _columns(mesh, vc)
        shf = np.full(mesh.nc, 100.0)
        dt = 600.0
        res = pbl_diffusion(
            st.theta, st.tracers["qv"], dpi, p, temp,
            shf, np.zeros(mesh.nc), np.full(mesh.nc, 5.0), ex[:, -1], dt,
        )
        col_theta = (res.dtheta * dpi).sum(axis=1) / GRAVITY
        np.testing.assert_allclose(CP_DRY * col_theta * ex[:, -1], 100.0, rtol=1e-8)

    def test_diffusion_smooths_profile(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        theta = st.theta.copy()
        theta[:, -2] += 5.0              # a kink
        res = pbl_diffusion(
            theta, st.tracers["qv"], dpi, p, temp,
            np.full(mesh.nc, 200.0), np.zeros(mesh.nc),
            np.full(mesh.nc, 10.0), ex[:, -1], 1800.0,
        )
        assert res.dtheta[:, -2].mean() < 0.0


class TestSurfaceModel:
    def _model(self, mesh):
        return SurfaceModel(
            land_mask=idealized_land_mask(mesh.cell_lat, mesh.cell_lon),
            sst=idealized_sst(mesh.cell_lat),
        )

    def test_ocean_skin_is_sst(self, mesh):
        m = self._model(mesh)
        ocean = m.land_mask == 0.0
        np.testing.assert_allclose(m.skin_temperature()[ocean], m.sst[ocean])

    def test_fluxes_signs(self, mesh):
        m = self._model(mesh)
        t_air = m.skin_temperature() - 2.0     # unstable: warm surface
        fl = m.fluxes(t_air, np.full(mesh.nc, 0.005), np.full(mesh.nc, 8.0),
                      np.full(mesh.nc, 1.0e5))
        assert fl.sensible.mean() > 0.0
        assert np.all(fl.evaporation >= 0.0)
        assert np.all(fl.momentum_drag > 0.0)

    def test_land_slab_warms_under_sun(self, mesh):
        m = self._model(mesh)
        t0 = m.t_land.copy()
        fl = m.fluxes(m.skin_temperature(), np.full(mesh.nc, 0.01),
                      np.full(mesh.nc, 2.0), np.full(mesh.nc, 1.0e5))
        m.step_land(np.full(mesh.nc, 800.0), np.full(mesh.nc, 400.0), fl, 1800.0)
        land = m.land_mask > 0.5
        assert (m.t_land[land] - t0[land]).mean() > 0.0
        ocean = m.land_mask == 0.0
        np.testing.assert_array_equal(m.t_land[ocean], t0[ocean])

    def test_land_slab_bounded(self, mesh):
        m = self._model(mesh)
        fl = m.fluxes(m.skin_temperature(), np.full(mesh.nc, 0.01),
                      np.full(mesh.nc, 2.0), np.full(mesh.nc, 1.0e5))
        for _ in range(1000):
            m.step_land(np.full(mesh.nc, 1200.0), np.full(mesh.nc, 450.0), fl, 3600.0)
        assert m.t_land.max() <= 340.0

    def test_land_mask_covers_na_box(self, mesh):
        mask = idealized_land_mask(mesh.cell_lat, mesh.cell_lon)
        inside = (
            (mesh.cell_lat > np.deg2rad(20)) & (mesh.cell_lat < np.deg2rad(60))
            & (np.mod(mesh.cell_lon + np.pi, 2 * np.pi) - np.pi > np.deg2rad(-130))
            & (np.mod(mesh.cell_lon + np.pi, 2 * np.pi) - np.pi < np.deg2rad(-60))
        )
        assert mask[inside].mean() > 0.9

    def test_sst_peaks_at_equator(self, mesh):
        sst = idealized_sst(mesh.cell_lat)
        eq = np.abs(mesh.cell_lat) < 0.1
        pole = mesh.cell_lat > 1.3
        assert sst[eq].mean() > sst[pole].mean() + 15.0


class TestPhysicsSuite:
    def test_full_suite_runs_and_is_finite(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        suite = PhysicsSuite(
            mesh, vc,
            SurfaceModel(
                land_mask=idealized_land_mask(mesh.cell_lat, mesh.cell_lon),
                sst=idealized_sst(mesh.cell_lat),
            ),
            config=PhysicsConfig(dt_physics=600.0),
        )
        tend = suite.compute(st, np.full(mesh.nc, 5.0))
        for arr in (tend.dtheta, tend.dqv, tend.dqc, tend.dqr,
                    tend.precip_total, tend.gsw, tend.glw, tend.tskin):
            assert np.isfinite(arr).all()
        assert np.all(tend.precip_total >= 0.0)

    def test_radiation_caching(self, mesh, vc):
        st, *_ = _columns(mesh, vc)
        suite = PhysicsSuite(
            mesh, vc,
            SurfaceModel(
                land_mask=np.zeros(mesh.nc), sst=idealized_sst(mesh.cell_lat)
            ),
            config=PhysicsConfig(dt_physics=600.0, rad_ratio=3),
        )
        suite.compute(st, np.full(mesh.nc, 5.0))
        first = suite._cached_rad
        suite.compute(st, np.full(mesh.nc, 5.0))
        assert suite._cached_rad is first          # step 1: cached
        suite.compute(st, np.full(mesh.nc, 5.0))
        suite.compute(st, np.full(mesh.nc, 5.0))
        assert suite._cached_rad is not first      # step 3: recomputed

    def test_q1_q2_definitions(self, mesh, vc):
        st, dpi, p, ex, temp = _columns(mesh, vc)
        suite = PhysicsSuite(
            mesh, vc,
            SurfaceModel(land_mask=np.zeros(mesh.nc), sst=idealized_sst(mesh.cell_lat)),
            config=PhysicsConfig(dt_physics=600.0),
        )
        tend = suite.compute(st, np.full(mesh.nc, 5.0))
        np.testing.assert_allclose(tend.q1(ex), tend.dtheta * ex)
        np.testing.assert_allclose(
            tend.q2(), -(LATENT_HEAT_VAP / CP_DRY) * tend.dqv
        )
