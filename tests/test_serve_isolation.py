"""Per-request fault isolation in the serving layer (repro.serve).

The satellite contract: a poisoned request — a fault plan scoped to one
submission — fails with a structured error while the server keeps
serving; concurrent clean requests stay bitwise clean; the tainted model
instance is recycled by the pool, never handed to another request; and
faulted results never enter the result cache in either direction.

Steps are chosen >= the physics cadence (physics_ratio = 12 dynamics
steps) so the injected ML_BLOWUP actually fires inside the lead time.
"""

from __future__ import annotations

import pytest

from repro.resilience.faults import FaultPlan
from repro.serve import (
    ForecastRequest,
    ForecastScheduler,
    ModelPool,
    run_serial_oracle,
)

pytestmark = [pytest.mark.chaos, pytest.mark.slow]

STEPS = 12   # one physics call at level 2/3 (physics_ratio = 12)


def _req(seed: int, **kw) -> ForecastRequest:
    return ForecastRequest(level=2, nlev=8, steps=STEPS, seed=seed, **kw)


class TestFaultIsolation:
    def test_poisoned_fails_clean_neighbours_bitwise(self):
        """The headline: one poisoned request among clean concurrent
        ones errors in isolation; every clean result is bit-identical
        to its serial oracle; the tainted instance is recycled."""
        clean = [_req(seed=s) for s in range(3)]
        poisoned = _req(seed=50)
        oracles = {r.cache_key(): run_serial_oracle(r) for r in clean}

        pool = ModelPool(max_models=2)
        with ForecastScheduler(max_workers=4, pool=pool) as sched:
            bad_job = sched.submit(poisoned, fault_plan="smoke")
            clean_jobs = sched.map(clean)
            bad = bad_job.result(timeout=240)
            results = [j.result(timeout=240) for j in clean_jobs]
            stats = sched.stats()

        assert bad.status == "error"
        assert bad.error.code == "FAULT"
        assert bad.error.faults["fired"].get("ml_blowup", 0) >= 1
        assert bad.members == ()
        for res in results:
            assert res.ok
            assert res.digest() == oracles[res.key].digest()
        assert stats["errors"] == 1 and stats["completed"] == 3
        assert stats["pool"]["recycled"] == 1

    def test_recycled_instance_replaced_not_reused(self):
        """After a poisoned request, the next request for the same model
        config gets a freshly built instance and a clean bitwise run."""
        req = _req(seed=7)
        oracle = run_serial_oracle(req)
        pool = ModelPool(max_models=1)
        with ForecastScheduler(max_workers=1, pool=pool) as sched:
            bad = sched.submit(_req(seed=8), fault_plan="smoke")
            assert bad.result(timeout=240).status == "error"
            res = sched.submit(req).result(timeout=240)
        assert res.ok
        assert res.digest() == oracle.digest()
        stats = pool.stats()
        assert stats["recycled"] == 1
        assert stats["built"] == 2

    def test_faulted_requests_bypass_cache_both_ways(self):
        req = _req(seed=9)
        with ForecastScheduler(max_workers=1,
                               pool=ModelPool(max_models=1)) as sched:
            # Clean run populates the cache...
            clean = sched.submit(req).result(timeout=240)
            assert clean.ok
            # ...but a poisoned twin must NOT be satisfied from it:
            bad = sched.submit(req, fault_plan="smoke").result(timeout=240)
            assert bad.status == "error" and not bad.cache_hit
            # ...and the error must not have evicted/poisoned the entry:
            warm = sched.submit(req).result(timeout=240)
        assert warm.ok and warm.cache_hit
        assert warm.digest() == clean.digest()

    def test_empty_plan_is_not_poison(self):
        req = _req(seed=10)
        with ForecastScheduler(max_workers=1,
                               pool=ModelPool(max_models=1)) as sched:
            res = sched.submit(req, fault_plan=FaultPlan("none")).result(
                timeout=240
            )
        assert res.ok
        assert res.digest() == run_serial_oracle(req).digest()

    def test_unknown_plan_name_rejected_at_submit(self):
        with ForecastScheduler(max_workers=1,
                               pool=ModelPool(max_models=1)) as sched:
            with pytest.raises(ValueError):
                sched.submit(_req(seed=0), fault_plan="not-a-plan")
            # The rejection never consumed a worker or a model.
            assert sched.stats()["submitted"] == 0

    def test_storm_soak_server_survives(self):
        """A storm-plan barrage mixed with clean traffic: the server
        resolves everything exactly once and clean results stay ok."""
        clean = [_req(seed=s) for s in range(2)]
        storms = [_req(seed=100 + s) for s in range(3)]
        with ForecastScheduler(max_workers=4,
                               pool=ModelPool(max_models=2)) as sched:
            storm_jobs = [sched.submit(r, fault_plan="storm", fault_seed=s)
                          for s, r in enumerate(storms)]
            clean_jobs = sched.map(clean)
            storm_results = [j.result(timeout=240) for j in storm_jobs]
            clean_results = [j.result(timeout=240) for j in clean_jobs]
            stats = sched.stats()

        # Storm faults are rate-driven: each poisoned request either
        # blew up (isolated error) or got lucky — never anything else.
        assert all(r.status in ("ok", "error") for r in storm_results)
        assert all(r.ok for r in clean_results)
        n = len(storms) + len(clean)
        assert stats["submitted"] == n
        assert stats["completed"] + stats["errors"] == n
