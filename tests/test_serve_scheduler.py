"""Concurrency property tests of the forecast scheduler (repro.serve).

The serving layer's headline contracts, exercised end to end:

* **exactly once** — N concurrent submissions with randomized arrival
  all complete, none dropped, none resolved twice;
* **bitwise** — every concurrent result is bit-identical to running the
  same request serially on a freshly built model
  (:func:`run_serial_oracle`), across warm pool reuse, chunked
  stepping, and (for ML schemes) cross-request inference batching;
* **cancellation** — cancelling jobs mid-flight never corrupts the
  pool: later requests on the same instances stay bitwise clean;
* **cache** — a hit is byte-identical to the cold run and flagged.
"""

from __future__ import annotations

import random
import time

import numpy as np
import pytest

from repro.serve import (
    ForecastRequest,
    ForecastScheduler,
    ModelPool,
    run_serial_oracle,
)

pytestmark = pytest.mark.slow


def _tiny(seed: int, steps: int = 4, **kw) -> ForecastRequest:
    return ForecastRequest(level=2, nlev=8, steps=steps, seed=seed, **kw)


class TestExactlyOnceBitwise:
    def test_concurrent_random_arrival_matches_serial_oracle(self):
        """The core property: concurrent execution with random arrival
        jitter produces, for every request, exactly one result, bitwise
        identical to the serial single-model reference."""
        rng = random.Random(1234)
        requests = [_tiny(seed=s) for s in range(6)]
        oracles = {r.cache_key(): run_serial_oracle(r) for r in requests}

        with ForecastScheduler(max_workers=4,
                               pool=ModelPool(max_models=2)) as sched:
            jobs = []
            for r in rng.sample(requests, len(requests)):
                jobs.append(sched.submit(r))
                time.sleep(rng.uniform(0.0, 0.01))
            results = [j.result(timeout=120) for j in jobs]
            stats = sched.stats()

        assert [r.status for r in results] == ["ok"] * len(requests)
        for res in results:
            assert res.digest() == oracles[res.key].digest()
            # Field-level check on one member, not just the digest.
            oracle_fields = oracles[res.key].members[0].fields
            for name, arr in res.members[0].fields.items():
                assert np.array_equal(arr, oracle_fields[name]), name
        assert stats["submitted"] == len(requests)
        assert stats["completed"] == len(requests)
        assert stats["errors"] == 0 and stats["cancellations"] == 0

    def test_duplicate_submissions_agree(self):
        """The same request submitted concurrently resolves every copy
        ``ok`` with identical bits (stampedes allowed, divergence not)."""
        req = _tiny(seed=3)
        with ForecastScheduler(max_workers=4,
                               pool=ModelPool(max_models=2)) as sched:
            jobs = [sched.submit(req) for _ in range(6)]
            results = [j.result(timeout=120) for j in jobs]
        digests = {r.digest() for r in results}
        assert [r.status for r in results] == ["ok"] * 6
        assert len(digests) == 1

    def test_ensemble_members_bitwise(self):
        req = _tiny(seed=5, ensemble_size=3)
        oracle = run_serial_oracle(req)
        with ForecastScheduler(max_workers=2,
                               pool=ModelPool(max_models=1)) as sched:
            res = sched.submit(req).result(timeout=240)
        assert res.ok and len(res.members) == 3
        assert res.digest() == oracle.digest()
        member_digests = [m.digest for m in res.members]
        assert len(set(member_digests)) == 3   # members truly distinct

    def test_ml_scheme_with_batching_bitwise(self):
        """MIX-ML requests through the shared batching nets stay bitwise
        identical to the serial oracle (steps chosen so ML physics
        actually fires)."""
        requests = [_tiny(seed=s, steps=12, scheme="MIX-ML")
                    for s in range(3)]
        oracles = {r.cache_key(): run_serial_oracle(r) for r in requests}
        with ForecastScheduler(max_workers=3,
                               pool=ModelPool(max_models=3)) as sched:
            results = [j.result(timeout=240)
                       for j in sched.map(requests)]
        for res in results:
            assert res.ok
            assert res.digest() == oracles[res.key].digest()


class TestCancellation:
    def test_cancel_before_start_resolves_cancelled(self):
        with ForecastScheduler(max_workers=1,
                               pool=ModelPool(max_models=1)) as sched:
            blocker = sched.submit(_tiny(seed=0, steps=8))
            victim = sched.submit(_tiny(seed=1, steps=8))
            victim.cancel()
            res = victim.result(timeout=120)
            assert blocker.result(timeout=120).ok
        assert res.status == "cancelled"
        assert res.error.code == "CANCELLED"

    def test_cancel_mid_flight_never_corrupts_pool(self):
        """Cancel a storm of jobs at random; every job still resolves
        exactly once, and a fresh request afterwards — served by the
        same pooled instances — is bitwise identical to its oracle."""
        rng = random.Random(99)
        pool = ModelPool(max_models=2)
        with ForecastScheduler(max_workers=4, pool=pool,
                               step_chunk=1) as sched:
            jobs = [sched.submit(_tiny(seed=s, steps=8))
                    for s in range(10)]
            for j in rng.sample(jobs, 5):
                time.sleep(rng.uniform(0.0, 0.02))
                j.cancel()
            results = [j.result(timeout=240) for j in jobs]
            # Every job resolved exactly once, to ok or cancelled.
            assert all(r.status in ("ok", "cancelled") for r in results)
            stats = sched.stats()
            assert stats["completed"] + stats["cancellations"] == 10

            probe = _tiny(seed=77, steps=6)
            res = sched.submit(probe).result(timeout=120)
        assert res.ok
        assert res.digest() == run_serial_oracle(probe).digest()

    def test_cancelled_results_not_cached(self):
        with ForecastScheduler(max_workers=1,
                               pool=ModelPool(max_models=1)) as sched:
            blocker = sched.submit(_tiny(seed=0, steps=8))
            victim = sched.submit(_tiny(seed=8, steps=8))
            victim.cancel()
            assert victim.result(timeout=120).status == "cancelled"
            blocker.result(timeout=120)
            # Resubmit: must execute (no cache hit) and succeed.
            redo = sched.submit(_tiny(seed=8, steps=8)).result(timeout=120)
        assert redo.ok and not redo.cache_hit


class TestCache:
    def test_hit_is_byte_identical_and_flagged(self):
        req = _tiny(seed=11)
        with ForecastScheduler(max_workers=2,
                               pool=ModelPool(max_models=1)) as sched:
            cold = sched.submit(req).result(timeout=120)
            warm = sched.submit(req).result(timeout=120)
            stats = sched.stats()
        assert cold.ok and not cold.cache_hit
        assert warm.ok and warm.cache_hit
        assert warm.digest() == cold.digest()
        for name, arr in warm.members[0].fields.items():
            assert np.array_equal(arr, cold.members[0].fields[name])
        assert stats["cache_hits"] == 1

    def test_distinct_configs_never_cross_hit(self):
        a, b = _tiny(seed=0), _tiny(seed=0, steps=6)
        with ForecastScheduler(max_workers=2,
                               pool=ModelPool(max_models=1)) as sched:
            ra = sched.submit(a).result(timeout=120)
            rb = sched.submit(b).result(timeout=120)
        assert ra.ok and rb.ok
        assert not rb.cache_hit
        assert ra.digest() != rb.digest()


class TestLifecycle:
    def test_submit_after_shutdown_raises(self):
        sched = ForecastScheduler(max_workers=1,
                                  pool=ModelPool(max_models=1))
        sched.shutdown()
        with pytest.raises(RuntimeError):
            sched.submit(_tiny(seed=0))

    def test_acceptance_100_concurrent_requests(self):
        """ISSUE acceptance: >= 100 concurrent tiny-grid requests in one
        process, zero dropped or duplicated responses."""
        requests = [_tiny(seed=s % 25, steps=2) for s in range(100)]
        with ForecastScheduler(max_workers=4,
                               pool=ModelPool(max_models=4)) as sched:
            jobs = sched.map(requests)
            results = [j.result(timeout=600) for j in jobs]
            stats = sched.stats()
        # Zero dropped: every job produced a result...
        assert len(results) == 100
        assert all(r.ok for r in results)
        # ...and zero duplicated: each resolved exactly once.
        assert stats["submitted"] == 100
        assert stats["completed"] == 100
        assert stats["in_flight"] == 0
        # Identical requests agree bitwise; distinct ones differ.
        by_key: dict[str, set] = {}
        for r in results:
            by_key.setdefault(r.key, set()).add(r.digest())
        assert len(by_key) == 25
        assert all(len(d) == 1 for d in by_key.values())
