"""Compiled stencil layer: backend equivalence, contracts, and the
operator-cache/hot-loop bugfix regressions.

* the ``reference`` backend is pinned **bitwise** against inline copies
  of the pre-refactor eager-NumPy operators (the goldens);
* the ``fused`` backend is pinned against ``reference`` per kernel under
  its declared contract — bitwise for the linear gather/arithmetic
  kernels, a scaled-inf-norm tolerance where the fused form folds a
  normalisation into the weights or reorders a summation;
* the mimetic identities re-run per backend;
* the operator cache compiles exactly once under thread hammering and is
  immutable after publish;
* the three named hot-loop bugfixes each carry a regression test.
"""

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dycore import operators as ops
from repro.dycore import stencil as stc
from repro.dycore import tendencies as tend
from repro.grid.mesh import PAD, build_mesh
from repro.precision.policy import NS, PrecisionPolicy

BACKENDS = sorted(stc.BACKENDS)


@pytest.fixture(scope="module")
def mesh3():
    return build_mesh(3)


@pytest.fixture(scope="module")
def mesh4():
    return build_mesh(4)


def _fields(mesh, seed, nlev):
    rng = np.random.default_rng(seed)
    shape = (nlev,) if nlev else ()
    return {
        "edge": rng.normal(size=(mesh.ne,) + shape),
        "cell": rng.normal(size=(mesh.nc,) + shape),
        "vertex": rng.normal(size=(mesh.nv,) + shape),
    }


#: public operator -> (input staggering kinds)
OPERATORS = {
    "divergence": ("edge",),
    "gradient": ("cell",),
    "curl": ("edge",),
    "cell_to_edge": ("cell",),
    "cell_to_edge_upwind": ("cell", "edge"),
    "vertex_to_edge": ("vertex",),
    "vertex_to_cell": ("vertex",),
    "reconstruct_cell_vectors": ("edge",),
    "tangential_velocity": ("edge",),
    "kinetic_energy": ("edge",),
    "laplacian_cell": ("cell",),
    "laplacian_edge": ("edge",),
}


def _call(name, mesh, fields, backend):
    fn = getattr(ops, name)
    args = [fields[kind] for kind in OPERATORS[name]]
    return fn(mesh, *args, backend=backend)


def _assert_contract(name, ref, fused):
    spec = stc.STENCILS[name]
    if spec.bitwise:
        assert np.array_equal(ref, fused), f"{name}: fused not bitwise"
    else:
        bound = spec.tolerance * max(float(np.abs(ref).max()), 1e-300)
        err = float(np.abs(fused - ref).max())
        assert err <= bound, f"{name}: |fused-ref|={err:.3e} > {bound:.3e}"


# -- pre-refactor goldens (the old eager implementations, verbatim) --------

def _legacy_gather_edges(mesh, edge_field):
    c = ops.mesh_ops(mesh)
    out = edge_field[c.cell_edges_idx]
    out[c.cell_edges_pad] = 0.0
    return out


def _legacy_divergence(mesh, flux_edge):
    gathered = _legacy_gather_edges(mesh, flux_edge)
    w = ops.mesh_ops(mesh).div_w
    extra = gathered.ndim - 2
    w = w.reshape(w.shape + (1,) * extra)
    acc = (gathered * w).sum(axis=1)
    area = mesh.cell_area.reshape((-1,) + (1,) * extra)
    return acc / area


def _legacy_curl(mesh, u_edge):
    c = ops.mesh_ops(mesh)
    ue = u_edge[c.vertex_edges_idx]
    w = c.curl_w
    extra = ue.ndim - 2
    w = w.reshape(w.shape + (1,) * extra)
    acc = (ue * w).sum(axis=1)
    area = mesh.vertex_area.reshape((-1,) + (1,) * extra)
    return acc / area


def _legacy_vertex_to_cell(mesh, vertex_field):
    c = ops.mesh_ops(mesh)
    vals = vertex_field[c.cell_vertices_idx]
    mask = c.cell_vertices_valid.astype(vals.dtype)
    cnt = np.maximum(mask.sum(axis=1), 1.0)
    extra = vals.ndim - 2
    mask = mask.reshape(mask.shape + (1,) * extra)
    s = (vals * mask).sum(axis=1)
    return s / cnt.reshape(cnt.shape + (1,) * extra)


def _legacy_reconstruct(mesh, u_edge):
    c = ops.mesh_ops(mesh)
    ug = u_edge[c.cell_edges_idx]
    valid = c.cell_edges_valid
    ug = np.where(valid.reshape(valid.shape + (1,) * (ug.ndim - 2)), ug, 0.0)
    if ug.ndim == 2:
        return np.einsum("nik,nk->ni", mesh.cell_recon, ug)
    return np.einsum("nik,nkl->nil", mesh.cell_recon, ug)


class TestReferenceMatchesPreRefactorGoldens:
    """The reference backend is the pre-stencil eager path, bitwise."""

    @pytest.mark.parametrize("nlev", [0, 5])
    def test_gather_reduce_operators(self, mesh3, nlev):
        f = _fields(mesh3, 11, nlev)
        np.testing.assert_array_equal(
            ops.divergence(mesh3, f["edge"], backend="reference"),
            _legacy_divergence(mesh3, f["edge"]),
        )
        np.testing.assert_array_equal(
            ops.curl(mesh3, f["edge"], backend="reference"),
            _legacy_curl(mesh3, f["edge"]),
        )
        np.testing.assert_array_equal(
            ops.vertex_to_cell(mesh3, f["vertex"], backend="reference"),
            _legacy_vertex_to_cell(mesh3, f["vertex"]),
        )
        np.testing.assert_array_equal(
            ops.reconstruct_cell_vectors(mesh3, f["edge"], backend="reference"),
            _legacy_reconstruct(mesh3, f["edge"]),
        )

    @pytest.mark.parametrize("nlev", [0, 5])
    def test_point_operators(self, mesh3, nlev):
        f = _fields(mesh3, 12, nlev)
        c = ops.mesh_ops(mesh3)
        de = mesh3.de.reshape((-1,) + (1,) * (f["cell"].ndim - 1))
        np.testing.assert_array_equal(
            ops.gradient(mesh3, f["cell"], backend="reference"),
            (f["cell"][c.edge_c2] - f["cell"][c.edge_c1]) / de,
        )
        np.testing.assert_array_equal(
            ops.cell_to_edge(mesh3, f["cell"], backend="reference"),
            0.5 * (f["cell"][c.edge_c1] + f["cell"][c.edge_c2]),
        )
        np.testing.assert_array_equal(
            ops.cell_to_edge_upwind(mesh3, f["cell"], f["edge"], backend="reference"),
            np.where(f["edge"] >= 0.0, f["cell"][c.edge_c1], f["cell"][c.edge_c2]),
        )
        np.testing.assert_array_equal(
            ops.vertex_to_edge(mesh3, f["vertex"], backend="reference"),
            0.5 * (f["vertex"][c.edge_v1] + f["vertex"][c.edge_v2]),
        )


class TestBackendEquivalence:
    """Fused vs reference under each kernel's declared contract."""

    @pytest.mark.parametrize("name", sorted(OPERATORS))
    @pytest.mark.parametrize("nlev", [0, 6])
    def test_g3(self, mesh3, name, nlev):
        f = _fields(mesh3, 21, nlev)
        _assert_contract(
            name,
            _call(name, mesh3, f, "reference"),
            _call(name, mesh3, f, "fused"),
        )

    @pytest.mark.parametrize("name", sorted(OPERATORS))
    def test_g4(self, mesh4, name):
        f = _fields(mesh4, 22, 8)
        _assert_contract(
            name,
            _call(name, mesh4, f, "reference"),
            _call(name, mesh4, f, "fused"),
        )

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_randomized(self, seed):
        mesh = build_mesh(2)
        f = _fields(mesh, seed, 4)
        for name in OPERATORS:
            _assert_contract(
                name,
                _call(name, mesh, f, "reference"),
                _call(name, mesh, f, "fused"),
            )

    def test_fused_returns_fresh_arrays(self, mesh3):
        """Outputs must never alias plan scratch: consecutive calls
        return distinct arrays (the solver keeps stage tendencies)."""
        f = _fields(mesh3, 23, 6)
        a = ops.divergence(mesh3, f["edge"], backend="fused")
        b = ops.divergence(mesh3, 2.0 * f["edge"], backend="fused")
        assert a is not b
        assert not np.shares_memory(a, b)
        np.testing.assert_allclose(2.0 * a, b, rtol=1e-12)

    def test_non_f64_dtypes_delegate_to_reference(self, mesh3):
        f32 = _fields(mesh3, 24, 5)["cell"].astype(np.float32)
        ref = ops.cell_to_edge(mesh3, f32, backend="reference")
        fused = ops.cell_to_edge(mesh3, f32, backend="fused")
        assert fused.dtype == np.float32
        np.testing.assert_array_equal(ref, fused)

    def test_optional_accelerators_degrade_silently(self, mesh3):
        """numexpr/numba availability is a boolean, and the fused
        backend works either way (pure NumPy when absent)."""
        assert isinstance(stc.NUMEXPR_AVAILABLE, bool)
        assert isinstance(stc.NUMBA_AVAILABLE, bool)
        f = _fields(mesh3, 25, 4)
        out = ops.laplacian_edge(mesh3, f["edge"], backend="fused")
        assert np.isfinite(out).all()


class TestMimeticIdentitiesPerBackend:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_area_weighted_divergence_sums_to_zero(self, mesh3, backend):
        rng = np.random.default_rng(31)
        flux = rng.normal(size=(mesh3.ne, 4))
        div = ops.divergence(mesh3, flux, backend=backend)
        total = (div * mesh3.cell_area[:, None]).sum(axis=0)
        np.testing.assert_allclose(
            total, 0.0, atol=1e-6 * mesh3.cell_area.mean()
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_curl_of_gradient_vanishes(self, mesh3, backend):
        rng = np.random.default_rng(32)
        psi = rng.normal(size=mesh3.nc)
        g = ops.gradient(mesh3, psi, backend=backend)
        zeta = ops.curl(mesh3, g, backend=backend)
        scale = np.abs(g).max() / mesh3.de.mean()
        np.testing.assert_allclose(zeta, 0.0, atol=1e-10 * scale)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_constant_fields(self, mesh3, backend):
        np.testing.assert_allclose(
            ops.gradient(mesh3, np.full(mesh3.nc, 7.5), backend=backend),
            0.0, atol=1e-18,
        )
        np.testing.assert_allclose(
            ops.vertex_to_cell(mesh3, np.full(mesh3.nv, 2.0), backend=backend),
            2.0,
        )
        np.testing.assert_allclose(
            ops.cell_to_edge(mesh3, np.full(mesh3.nc, 3.0), backend=backend),
            3.0,
        )


class TestOperatorCacheThreadSafety:
    """Bugfix: lazy unsynchronized compile raced under ``repro.serve``."""

    def test_thread_hammer_single_compilation(self, monkeypatch):
        builds = []
        real_init = stc.OperatorCache.__init__

        def counting_init(self, mesh):
            builds.append(id(self))
            real_init(self, mesh)

        monkeypatch.setattr(stc.OperatorCache, "__init__", counting_init)
        mesh = build_mesh(2)
        n = 16
        barrier = threading.Barrier(n)
        results, errors = [], []

        def hammer(i):
            try:
                barrier.wait()
                cache = ops.mesh_ops(mesh)
                plan = stc.compiled_kernels(
                    mesh, "fused" if i % 2 else "reference"
                )
                w64 = cache.v2c_weights(np.float64)
                w32 = cache.v2c_weights(np.float32)
                results.append((id(cache), plan.backend, id(w64[0]), id(w32[0])))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(builds) == 1, "OperatorCache compiled more than once"
        assert len({cache_id for cache_id, *_ in results}) == 1
        # v2c weights are the same published objects for every thread.
        assert len({w for *_, w, _ in results}) == 1
        assert len({w for *_, w in results}) == 1
        # Exactly one plan per backend was published.
        assert sorted(mesh._stencil_plans) == ["fused", "reference"]

    def test_v2c_cache_immutable_after_publish(self, mesh3):
        cache = ops.mesh_ops(mesh3)
        published = dict(cache._v2c_weights)
        # Exotic dtype: computed fresh, never cached.
        mask16, cnt16 = cache.v2c_weights(np.float16)
        assert mask16.dtype == np.float16
        assert cache._v2c_weights == published
        # The policy dtypes were built eagerly at compile time.
        assert np.dtype(np.float64) in published
        assert np.dtype(np.float32) in published

    def test_plan_reused_across_calls(self, mesh3):
        p1 = stc.compiled_kernels(mesh3, "fused")
        ops.divergence(mesh3, np.zeros(mesh3.ne), backend="fused")
        assert stc.compiled_kernels(mesh3, "fused") is p1


class TestGatherEdgesPadWeight:
    """Bugfix: clamp-gather + boolean-scatter replaced by pad-weight."""

    @pytest.mark.parametrize("nlev", [0, 5])
    def test_matches_legacy_scatter(self, mesh3, nlev):
        f = _fields(mesh3, 41, nlev)
        got = ops._gather_edges(mesh3, f["edge"])
        np.testing.assert_array_equal(got, _legacy_gather_edges(mesh3, f["edge"]))

    def test_pad_lanes_read_zero(self, mesh3):
        rng = np.random.default_rng(42)
        # Edge 0 carries a huge value: the old clamp gathered it into
        # pad lanes before zeroing; the weight must annihilate it.
        field = rng.normal(size=mesh3.ne)
        field[0] = 1e300
        got = ops._gather_edges(mesh3, field)
        pad = mesh3.cell_edges == PAD
        assert pad.any()
        np.testing.assert_array_equal(got[pad], 0.0)

    def test_cached_pad_weight_matches_validity(self, mesh3):
        c = ops.mesh_ops(mesh3)
        np.testing.assert_array_equal(
            c.edge_gather_w, (mesh3.cell_edges >= 0).astype(np.float64)
        )


class TestPrimalFluxHalfConstant:
    """Bugfix: the runtime ``0.5 * de / de`` division is gone."""

    @pytest.mark.parametrize("mixed", [False, True])
    def test_bitwise_vs_old_expression(self, mesh3, mixed):
        policy = PrecisionPolicy(mixed=mixed)
        rng = np.random.default_rng(51)
        dpi = rng.lognormal(size=(mesh3.nc, 6)) * 1e3
        u = rng.normal(size=(mesh3.ne, 6))
        dt = policy.dtype_of("mass_divergence")
        c1, c2 = mesh3.edge_cells[:, 0], mesh3.edge_cells[:, 1]
        w1 = (0.5 * mesh3.de / mesh3.de)[:, None].astype(dt)  # the old form
        old = (
            w1 * dpi[c1].astype(dt) + (1.0 - w1) * dpi[c2].astype(dt)
        ) * u.astype(dt)
        new = tend.primal_normal_flux_edge(mesh3, dpi, u, policy)
        assert new.dtype == old.dtype
        np.testing.assert_array_equal(new, old)

    def test_degenerate_zero_length_edge_stays_finite(self):
        mesh = build_mesh(1)
        mesh.de[0] = 0.0  # a degenerate edge NaN-poisoned the old form
        rng = np.random.default_rng(52)
        dpi = rng.lognormal(size=(mesh.nc, 4)) * 1e3
        u = rng.normal(size=(mesh.ne, 4))
        F = tend.primal_normal_flux_edge(mesh, dpi, u, NS)
        assert np.isfinite(F).all()


class TestBackendSelection:
    def test_unknown_backend_rejected(self, mesh3):
        with pytest.raises(ValueError, match="unknown stencil backend"):
            ops.divergence(mesh3, np.zeros(mesh3.ne), backend="magic")
        with pytest.raises(ValueError, match="unknown stencil backend"):
            stc.bind_stencil_backend(mesh3, "magic")

    def test_env_default(self, monkeypatch):
        monkeypatch.setenv(stc.BACKEND_ENV, "fused")
        assert stc.default_backend() == "fused"
        mesh = build_mesh(1)
        assert stc.bound_backend(mesh) == "fused"
        ops.curl(mesh, np.zeros(mesh.ne))
        assert stc.compiled_kernels(mesh).backend == "fused"
        monkeypatch.delenv(stc.BACKEND_ENV)
        assert stc.default_backend() == "reference"

    def test_mesh_binding_and_unbinding(self):
        mesh = build_mesh(1)
        assert stc.bound_backend(mesh) == "reference"
        stc.bind_stencil_backend(mesh, "fused")
        assert stc.bound_backend(mesh) == "fused"
        assert stc.compiled_kernels(mesh).backend == "fused"
        stc.bind_stencil_backend(mesh, None)
        assert stc.bound_backend(mesh) == "reference"

    def test_solver_config_binds_mesh(self):
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.vertical import VerticalCoordinate

        mesh = build_mesh(1)
        DynamicalCore(
            mesh, VerticalCoordinate.uniform(4),
            DycoreConfig(dt=600.0, stencil_backend="fused"),
        )
        assert stc.bound_backend(mesh) == "fused"
        # Plans were compiled eagerly at construction.
        assert "fused" in mesh._stencil_plans


class TestSolverPerBackend:
    def test_fused_step_tracks_reference_step(self):
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.state import solid_body_rotation_state
        from repro.dycore.vertical import VerticalCoordinate

        vc = VerticalCoordinate.uniform(6)
        states = {}
        for backend in BACKENDS:
            mesh = build_mesh(2)
            core = DynamicalCore(
                mesh, vc, DycoreConfig(dt=300.0, stencil_backend=backend)
            )
            state = solid_body_rotation_state(mesh, vc)
            for _ in range(3):
                state = core.step(state)
            states[backend] = state
        ref, fus = states["reference"], states["fused"]
        for name in ("ps", "u", "theta"):
            a, b = getattr(ref, name), getattr(fus, name)
            scale = max(float(np.abs(a).max()), 1e-300)
            assert float(np.abs(a - b).max()) <= 1e-9 * scale, name


class TestKernelAnnotationsPerBackend:
    """The registered kernels' declared access patterns hold on both
    backends (same index tables), and the static lint stays clean."""

    def test_registered_kernels_agree_across_backends(self, mesh3):
        from repro.dycore.kernels import MAJOR_KERNELS, sample_fields

        fields = sample_fields(mesh3, nlev=6)
        for name, reg in MAJOR_KERNELS.items():
            stc.bind_stencil_backend(mesh3, "reference")
            ref = reg.run(mesh3, fields)
            stc.bind_stencil_backend(mesh3, "fused")
            try:
                fused = reg.run(mesh3, fields)
            finally:
                stc.bind_stencil_backend(mesh3, None)
            scale = max(float(np.abs(ref).max()), 1e-300)
            assert float(np.abs(fused - ref).max()) <= 1e-11 * scale, name

    def test_static_lint_clean_for_both_backends(self):
        from repro.analysis.report import lint_kernels

        # The offload-plan annotations are backend-independent (both
        # backends drive the same declared index tables), so the kernel
        # lint must stay clean regardless of the active default.
        errors = [d for d in lint_kernels() if d.severity.name == "ERROR"]
        assert errors == []


class TestPerfModelStencilHook:
    def test_traffic_factors(self):
        assert stc.traffic_factor("divergence", "reference") == 1.0
        assert stc.traffic_factor("divergence", "fused") < 1.0
        assert stc.traffic_factor("calc_coriolis_term", "fused") < 1.0
        assert stc.traffic_factor("compute_rrr", "fused") == 1.0
        for name, spec in stc.STENCILS.items():
            assert spec.fused_passes <= spec.ref_passes, name

    def test_fused_backend_never_predicts_slower(self):
        from repro.model.config import TABLE2_GRIDS, TABLE3_SCHEMES
        from repro.perf.model import PerformanceModel

        grid = next(iter(TABLE2_GRIDS.values()))
        scheme = next(iter(TABLE3_SCHEMES.values()))
        ref = PerformanceModel(stencil_backend="reference")
        fus = PerformanceModel(stencil_backend="fused")
        c_ref = ref.step_cost(grid, scheme, 64)
        c_fus = fus.step_cost(grid, scheme, 64)
        assert c_fus.kernels <= c_ref.kernels
        assert c_fus.total <= c_ref.total

    def test_unknown_backend_rejected(self):
        from repro.perf.model import PerformanceModel

        with pytest.raises(ValueError):
            PerformanceModel(stencil_backend="magic")


class TestServeWarmPlansReuse:
    """Warm pooled models reuse one immutable compiled plan set."""

    def test_pool_reuses_plans_and_stays_bitwise(self, monkeypatch):
        monkeypatch.setenv(stc.BACKEND_ENV, "fused")
        from repro.serve.pool import ModelPool, make_member_state
        from repro.serve.request import ForecastRequest

        req = ForecastRequest(level=2, nlev=8, steps=3)
        pool = ModelPool(max_models=1)
        model = pool.acquire(req)
        assert stc.bound_backend(model.mesh) == "fused"
        plans_first = model.mesh._stencil_plans["fused"]
        first = model.run(make_member_state(model, req, 0), req.steps)
        pool.release(req, model)

        again = pool.acquire(req)
        assert again is model, "expected the warm instance back"
        assert again.mesh._stencil_plans["fused"] is plans_first, (
            "compiled plans must survive reset() and be reused warm"
        )
        second = again.run(make_member_state(again, req, 0), req.steps)
        pool.release(req, again)
        assert pool.built == 1 and pool.reused == 1
        for name in ("ps", "u", "theta"):
            assert np.array_equal(
                getattr(first, name), getattr(second, name)
            ), f"warm fused rerun not bitwise for {name}"
