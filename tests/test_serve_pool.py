"""Unit tests of the warm model pool (repro.serve.pool).

The pool's contract: exclusive hand-out, bit-exact warm reuse (a reset
model integrates identically to a freshly built one), bounded capacity
with idle eviction, and tainted instances recycled instead of reused.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve import (
    ForecastRequest,
    ModelPool,
    build_forecast_model,
    make_member_state,
)
from repro.serve.request import state_digest

REQ = ForecastRequest(level=2, nlev=8, steps=4)


class TestPoolLifecycle:
    def test_acquire_builds_then_reuses(self):
        pool = ModelPool(max_models=2)
        m1 = pool.acquire(REQ)
        pool.release(REQ, m1)
        m2 = pool.acquire(REQ)
        assert m2 is m1
        s = pool.stats()
        assert s["built"] == 1 and s["reused"] == 1

    def test_tainted_release_recycles(self):
        pool = ModelPool(max_models=1)
        m1 = pool.acquire(REQ)
        pool.release(REQ, m1, tainted=True)
        m2 = pool.acquire(REQ)
        assert m2 is not m1
        s = pool.stats()
        assert s["recycled"] == 1 and s["built"] == 2

    def test_evicts_idle_other_config_at_capacity(self):
        pool = ModelPool(max_models=1)
        m1 = pool.acquire(REQ)
        pool.release(REQ, m1)
        other = ForecastRequest(level=2, nlev=10, steps=4)
        m2 = pool.acquire(other)
        assert m2 is not m1
        s = pool.stats()
        assert s["evicted"] == 1 and s["built"] == 2
        assert s["total"] == 1

    def test_acquire_times_out_when_exhausted(self):
        pool = ModelPool(max_models=1)
        held = pool.acquire(REQ)
        with pytest.raises(TimeoutError):
            pool.acquire(REQ, timeout=0.05)
        pool.release(REQ, held)
        assert pool.acquire(REQ, timeout=1.0) is held

    def test_blocked_acquire_wakes_on_release(self):
        pool = ModelPool(max_models=1)
        held = pool.acquire(REQ)
        got = []

        def waiter():
            got.append(pool.acquire(REQ, timeout=10.0))

        t = threading.Thread(target=waiter)
        t.start()
        pool.release(REQ, held)
        t.join(timeout=10.0)
        assert not t.is_alive()
        assert got == [held]

    def test_concurrent_acquire_release_exclusive(self):
        """No model instance is ever held by two workers at once."""
        pool = ModelPool(max_models=2)
        in_use: set[int] = set()
        lock = threading.Lock()
        violations = []

        def worker(_):
            import time
            for _ in range(5):
                m = pool.acquire(REQ, timeout=30.0)
                with lock:
                    if id(m) in in_use:
                        violations.append(id(m))
                    in_use.add(id(m))
                time.sleep(0.002)   # hold window: overlaps would show
                with lock:
                    in_use.discard(id(m))
                pool.release(REQ, m)

        with ThreadPoolExecutor(max_workers=4) as ex:
            list(ex.map(worker, range(4)))
        assert not violations
        assert pool.stats()["total"] <= 2

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ModelPool(max_models=0)


class TestWarmReuseBitwise:
    def test_reset_run_matches_fresh_run(self):
        """The reset contract behind warm reuse: run → reset → run is
        bitwise identical, and identical to a freshly built model."""
        fresh = build_forecast_model(REQ.model_key())
        ref = fresh.run(make_member_state(fresh, REQ, 0), REQ.steps)
        ref_digest = state_digest(ref)

        warm = build_forecast_model(REQ.model_key())
        first = warm.run(make_member_state(warm, REQ, 0), REQ.steps)
        assert state_digest(first) == ref_digest
        warm.reset()
        second = warm.run(make_member_state(warm, REQ, 0), REQ.steps)
        assert state_digest(second) == ref_digest

    def test_reset_covers_different_followup_request(self):
        """A warm model that already served one request serves a
        *different* one (other seed, other lead time) bit-identically
        to a cold model."""
        other = ForecastRequest(level=2, nlev=8, steps=6, seed=9)
        cold = build_forecast_model(other.model_key())
        ref = state_digest(
            cold.run(make_member_state(cold, other, 0), other.steps)
        )

        warm = build_forecast_model(REQ.model_key())
        warm.run(make_member_state(warm, REQ, 0), REQ.steps)
        warm.reset()
        got = state_digest(
            warm.run(make_member_state(warm, other, 0), other.steps)
        )
        assert got == ref

    def test_member_states_deterministic_and_distinct(self):
        model = build_forecast_model(REQ.model_key())
        a0 = make_member_state(model, REQ, 0)
        a0b = make_member_state(model, REQ, 0)
        a1 = make_member_state(model, REQ, 1)
        assert state_digest(a0) == state_digest(a0b)
        assert state_digest(a0) != state_digest(a1)
