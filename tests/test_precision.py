"""Tests of the ns-type precision policy and deviation analysis."""

import numpy as np
import pytest

from repro.precision.analysis import (
    ACCURACY_THRESHOLD,
    DeviationTracker,
    relative_l2,
)
from repro.precision.policy import (
    GRIST_SENSITIVITY,
    PrecisionPolicy,
    TermSensitivity,
)


class TestPolicy:
    def test_dp_mode_everything_double(self):
        p = PrecisionPolicy(mixed=False)
        assert p.ns == np.float64
        for term in GRIST_SENSITIVITY:
            assert p.dtype_of(term) == np.float64
        assert p.demoted_terms() == []

    def test_mixed_mode_demotes_insensitive_only(self):
        p = PrecisionPolicy(mixed=True)
        assert p.ns == np.float32
        assert p.dtype_of("pressure_gradient") == np.float64
        assert p.dtype_of("gravity_term") == np.float64
        assert p.dtype_of("mass_flux_accumulation") == np.float64
        assert p.dtype_of("vertical_implicit_solve") == np.float64
        assert p.dtype_of("kinetic_energy_gradient") == np.float32
        assert p.dtype_of("tracer_advection") == np.float32
        assert p.dtype_of("coriolis_term") == np.float32

    def test_unknown_terms_default_sensitive(self):
        p = PrecisionPolicy(mixed=True)
        assert p.dtype_of("some_new_term") == np.float64

    def test_paper_classification_structure(self):
        """Section 3.4.2: PGF/gravity sensitive, advection insensitive,
        tracer transport almost entirely insensitive except mass flux."""
        s = GRIST_SENSITIVITY
        assert s["pressure_gradient"] is TermSensitivity.SENSITIVE
        assert s["gravity_term"] is TermSensitivity.SENSITIVE
        assert s["mass_flux_accumulation"] is TermSensitivity.SENSITIVE
        assert s["momentum_advection"] is TermSensitivity.INSENSITIVE
        assert s["tracer_advection"] is TermSensitivity.INSENSITIVE
        assert s["tracer_flux_limiter"] is TermSensitivity.INSENSITIVE

    def test_cast(self):
        p = PrecisionPolicy(mixed=True)
        x = np.ones(4, dtype=np.float64)
        y = p.cast("tracer_advection", x)
        assert y.dtype == np.float32
        z = p.cast("pressure_gradient", x)
        assert z is x                      # no copy when dtype matches

    def test_memory_fraction(self):
        assert PrecisionPolicy(mixed=False).memory_fraction_fp32() == 0.0
        f = PrecisionPolicy(mixed=True).memory_fraction_fp32()
        assert 0.5 < f < 1.0               # most terms are insensitive


class TestRelativeL2:
    def test_identical_is_zero(self):
        x = np.arange(10.0)
        assert relative_l2(x, x) == 0.0

    def test_known_value(self):
        gold = np.array([3.0, 4.0])      # norm 5
        test = np.array([3.0, 4.5])      # diff norm 0.5
        assert relative_l2(test, gold) == pytest.approx(0.1)

    def test_zero_gold(self):
        assert relative_l2(np.zeros(3), np.zeros(3)) == 0.0
        assert relative_l2(np.ones(3), np.zeros(3)) == np.inf

    def test_fp32_roundtrip_is_small(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        assert relative_l2(x.astype(np.float32), x) < 1e-6

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            relative_l2(np.zeros(3), np.zeros(4))


class TestDeviationTracker:
    def test_threshold_is_five_percent(self):
        assert ACCURACY_THRESHOLD == 0.05

    def test_passes_under_threshold(self):
        t = DeviationTracker()
        gold = np.array([1.0, 2.0, 3.0])
        t.record(gold * 1.01, gold, gold * 0.99, gold)
        assert t.passes()
        assert t.max_ps < 0.05

    def test_fails_over_threshold(self):
        t = DeviationTracker()
        gold = np.array([1.0, 2.0, 3.0])
        t.record(gold * 1.2, gold, gold, gold)
        assert not t.passes()

    def test_history_and_summary(self):
        t = DeviationTracker()
        gold = np.ones(5)
        for f in (1.0, 1.01, 1.02):
            t.record(gold * f, gold, gold, gold)
        s = t.summary()
        assert s["steps"] == 3
        assert s["passes"] is True
        assert s["max_ps_deviation"] == pytest.approx(0.02)
