"""Cache-correctness of the forecast request schema (repro.serve.request).

The satellite contract: content-addressed keys collide exactly when the
requests are equal, every addressable field changes the key (including
the precision policy carried by the scheme label), and keys are stable
across processes so a persisted cache or a second server instance agrees
on identity.
"""

from __future__ import annotations

import subprocess
import sys
from dataclasses import replace

import pytest

from repro.serve import ForecastRequest
from repro.serve.request import CACHE_SCHEMA, SCENARIOS, SCHEMES


class TestValidation:
    def test_defaults_valid(self):
        r = ForecastRequest()
        assert r.scenario in SCENARIOS and r.scheme in SCHEMES

    @pytest.mark.parametrize("kwargs", [
        {"scenario": "nope"},
        {"scheme": "FP-PHY"},
        {"steps": 0},
        {"nlev": 0},
        {"level": -1},
        {"ensemble_size": 0},
    ])
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            ForecastRequest(**kwargs)

    def test_scheme_properties(self):
        assert not ForecastRequest(scheme="DP-PHY").mixed_precision
        assert ForecastRequest(scheme="MIX-ML").mixed_precision
        assert ForecastRequest(scheme="DP-ML").ml_physics
        assert not ForecastRequest(scheme="MIX-PHY").ml_physics


class TestCacheKey:
    def test_equal_requests_equal_keys(self):
        a = ForecastRequest(level=3, steps=12, seed=7)
        b = ForecastRequest(level=3, steps=12, seed=7)
        assert a == b
        assert a.cache_key() == b.cache_key()

    @pytest.mark.parametrize("change", [
        {"level": 2},
        {"nlev": 10},
        {"steps": 24},                  # lead time
        {"scenario": "baroclinic"},
        {"ensemble_size": 4},
        {"seed": 1},
        {"scheme": "MIX-PHY"},          # precision policy flips
        {"scheme": "DP-ML"},            # physics suite flips
        {"perturbation": 0.5},
    ])
    def test_every_field_changes_key(self, change):
        base = ForecastRequest()
        assert replace(base, **change).cache_key() != base.cache_key()

    def test_no_pairwise_collisions_across_grid(self):
        requests = [
            ForecastRequest(level=lv, nlev=nl, steps=st, seed=sd,
                            scheme=sc, scenario=scn)
            for lv in (2, 3)
            for nl in (8, 10)
            for st in (6, 12)
            for sd in (0, 1)
            for sc in SCHEMES
            for scn in SCENARIOS
        ]
        keys = {r.cache_key() for r in requests}
        assert len(keys) == len(requests)

    def test_key_includes_schema_version(self):
        assert ForecastRequest().canonical()["schema"] == CACHE_SCHEMA

    def test_key_is_hex_sha256(self):
        key = ForecastRequest().cache_key()
        assert len(key) == 64
        int(key, 16)

    def test_key_stable_across_processes(self):
        """A fresh interpreter derives the same key — no salted hashing,
        no dict-order dependence, no id()-derived content."""
        req = ForecastRequest(level=3, nlev=8, steps=12, seed=42,
                              scheme="MIX-ML", scenario="baroclinic",
                              ensemble_size=2)
        code = (
            "from repro.serve import ForecastRequest;"
            "print(ForecastRequest(level=3, nlev=8, steps=12, seed=42,"
            "scheme='MIX-ML', scenario='baroclinic',"
            "ensemble_size=2).cache_key())"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == req.cache_key()

    def test_model_key_excludes_state_only_fields(self):
        """Lead time, seed, ensemble size live in the state — requests
        differing only there share a pooled model."""
        a = ForecastRequest(steps=6, seed=0, ensemble_size=1)
        b = ForecastRequest(steps=24, seed=9, ensemble_size=3)
        assert a.model_key() == b.model_key()
        assert a.cache_key() != b.cache_key()
