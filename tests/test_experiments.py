"""Tests of the science experiments (Doksuri / climate comparisons)."""

import numpy as np
import pytest

from repro.dycore.vertical import VerticalCoordinate
from repro.experiments.climate import (
    north_america_box_mean,
    run_climate_case,
    zonal_mean_precip,
)
from repro.experiments.doksuri import (
    _in_box,
    regrid_to,
    run_doksuri_case,
    spatial_correlation,
    tropical_cyclone_state,
)
from repro.grid.mesh import build_mesh


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.stretched(8)


class TestTropicalCycloneState:
    def test_vortex_structure(self, mesh, vc):
        st = tropical_cyclone_state(mesh, vc, v_max=25.0)
        # Pressure minimum near the prescribed centre.
        from repro.experiments.doksuri import STORM_LAT, STORM_LON

        imin = int(np.argmin(st.ps))
        d = np.arccos(
            np.clip(
                np.sin(mesh.cell_lat[imin]) * np.sin(STORM_LAT)
                + np.cos(mesh.cell_lat[imin]) * np.cos(STORM_LAT)
                * np.cos(mesh.cell_lon[imin] - STORM_LON),
                -1, 1,
            )
        )
        assert d < 0.2                       # within ~1200 km on G3
        # A real depression (coarse G3 cells sit ~1 r_max from the
        # centre, sampling only part of the 25 hPa core).
        assert st.ps.min() < 0.995e5

    def test_cyclonic_circulation(self, mesh, vc):
        """NH vortex: positive relative vorticity at the core."""
        from repro.dycore.operators import curl
        from repro.experiments.doksuri import STORM_LAT, STORM_LON

        st = tropical_cyclone_state(mesh, vc)
        zeta = curl(mesh, st.u[:, -1])
        d = np.arccos(
            np.clip(
                np.sin(mesh.vertex_lat) * np.sin(STORM_LAT)
                + np.cos(mesh.vertex_lat) * np.cos(STORM_LAT)
                * np.cos(np.arctan2(mesh.vertex_xyz[:, 1], mesh.vertex_xyz[:, 0]) - STORM_LON),
                -1, 1,
            )
        )
        core = d < 0.12
        assert zeta[core].mean() > 0.0

    def test_warm_core(self, mesh, vc):
        from repro.dycore.state import tropical_profile_state

        st_bg = tropical_profile_state(mesh, vc, 300.0)
        st = tropical_cyclone_state(mesh, vc)
        anomaly = st.theta - st_bg.theta
        assert anomaly.max() > 0.5

    def test_moist_core(self, mesh, vc):
        from repro.experiments.doksuri import STORM_LAT, STORM_LON

        st = tropical_cyclone_state(mesh, vc)
        d = np.arccos(
            np.clip(
                np.sin(mesh.cell_lat) * np.sin(STORM_LAT)
                + np.cos(mesh.cell_lat) * np.cos(STORM_LAT)
                * np.cos(mesh.cell_lon - STORM_LON),
                -1, 1,
            )
        )
        core = d < 0.1
        far = d > 1.0
        qv_sfc = st.tracers["qv"][:, -1]
        assert qv_sfc[core].mean() > qv_sfc[far].mean()


class TestDoksuriRun:
    def test_produces_localised_rain(self):
        r = run_doksuri_case(3, nlev=8, hours=6.0)
        assert r.box_max_mm_day > 0.5
        raining = (r.mean_rain > 1e-9).mean()
        assert 0.0 < raining < 0.2           # a rain band, not global drizzle

    def test_rain_concentrated_in_box(self):
        r = run_doksuri_case(3, nlev=8, hours=6.0)
        box = _in_box(r.mesh)
        assert r.mean_rain[box].sum() > 0.7 * r.mean_rain.sum()


class TestRegridAndCorrelation:
    def test_regrid_constant(self, mesh):
        fine = build_mesh(4)
        out = regrid_to(mesh, fine, np.full(fine.nc, 3.3))
        np.testing.assert_allclose(out, 3.3)

    def test_regrid_conserves_integral(self, mesh):
        fine = build_mesh(4)
        rng = np.random.default_rng(0)
        f = np.abs(rng.normal(size=fine.nc))
        coarse = regrid_to(mesh, fine, f)
        # Integral against each coarse cell's received area.
        total_f = (f * fine.cell_area).sum()
        # Received areas:
        from scipy.spatial import cKDTree

        _, assign = cKDTree(mesh.cell_xyz).query(fine.cell_xyz)
        recv = np.bincount(assign, weights=fine.cell_area, minlength=mesh.nc)
        assert (coarse * recv).sum() == pytest.approx(total_f, rel=1e-10)

    def test_correlation_properties(self, rng):
        a = rng.normal(size=200)
        assert spatial_correlation(a, a) == pytest.approx(1.0)
        assert spatial_correlation(a, -a) == pytest.approx(-1.0)
        assert abs(spatial_correlation(a, rng.normal(size=200))) < 0.3
        assert spatial_correlation(a, np.zeros(200)) == 0.0

    def test_correlation_mask(self, rng):
        a = rng.normal(size=100)
        b = a.copy()
        b[50:] = rng.normal(size=50)         # decorrelate half
        mask = np.zeros(100, dtype=bool)
        mask[:50] = True
        assert spatial_correlation(a, b, mask) == pytest.approx(1.0)


class TestClimateExperiment:
    def test_conventional_run_produces_rain(self, mesh, vc):
        res = run_climate_case(mesh, vc, "DP-PHY", hours=10.0)
        assert res.stable
        assert res.global_mean_mm_day >= 0.0
        assert np.isfinite(res.na_box_mean_mm_day)

    def test_na_box_mean_weighting(self, mesh):
        ones = np.ones(mesh.nc)
        assert north_america_box_mean(mesh, ones) == pytest.approx(1.0)

    def test_zonal_mean_shape(self, mesh, rng):
        p = np.abs(rng.normal(size=mesh.nc))
        lats, prof = zonal_mean_precip(mesh, p, nbins=12)
        assert lats.shape == (12,)
        assert prof.shape == (12,)
        assert np.all(prof >= 0.0)

    def test_zonal_mean_of_constant(self, mesh):
        _, prof = zonal_mean_precip(mesh, np.full(mesh.nc, 2.0))
        np.testing.assert_allclose(prof, 2.0)
