"""Smoke tests for every ``benchmarks/bench_*.py`` entry point.

The benchmark suite is not collected by the default test run (pyproject
``testpaths = ["tests"]``), so a refactor can silently break it.  These
tests import each bench module and execute its entry points with a stub
``benchmark`` fixture (one plain call, no timing) — full-size for the
fast modules, tiny-size drivers for the two long-running figure modules
(fig7/fig8) — asserting only that the outputs are well-formed.  The
scientific assertions inside the full-size tests still run where the
full sizes are used.
"""

import numpy as np
import pytest

from repro.dycore.vertical import VerticalCoordinate
from repro.ml.data import TABLE1_PERIODS


class StubBenchmark:
    """pytest-benchmark stand-in: runs the callable exactly once."""

    def __call__(self, fn, *args, **kwargs):
        return fn(*args, **kwargs)

    def pedantic(self, fn, args=(), kwargs=None, rounds=1, iterations=1):
        return fn(*args, **(kwargs or {}))


@pytest.fixture()
def stub():
    return StubBenchmark()


@pytest.fixture(scope="module")
def vcoord8():
    return VerticalCoordinate.stretched(8)


@pytest.fixture(scope="module")
def tiny_trained():
    """The smallest ML suite that trains: G2, one period, one epoch."""
    from benchmarks.bench_fig8_ml_physics import train_setup

    return train_setup(level=2, nlev=8, periods=TABLE1_PERIODS[:1],
                       hours_per_period=2, epochs=1, width=8, n_resunits=1)


class TestFastModulesFullSize:
    """Cheap modules run their real entry points end to end."""

    def test_bench_table2(self, stub):
        from benchmarks import bench_table2_grids as m

        m.test_table2_rows(stub)
        m.test_generated_meshes_match_formulas()

    def test_bench_table1(self, stub, mesh_g2, vcoord8):
        from benchmarks import bench_table1_training_data as m

        m.test_table1_periods(stub, mesh_g2, vcoord8)
        m.test_split_protocol_ratio(stub)

    def test_bench_fig9(self, stub, mesh_g3):
        from benchmarks import bench_fig9_kernels as m

        m.test_fig9_speedups(stub)
        m.test_fig9_cache_mechanism_measured(stub)
        m.test_fig9_real_kernel_execution(stub, mesh_g3)

    def test_bench_fig10(self, stub):
        from benchmarks import bench_fig10_weak_scaling as m

        m.test_fig10_weak_scaling(stub)

    def test_bench_fig11(self, stub):
        from benchmarks import bench_fig11_strong_scaling as m

        m.test_fig11_strong_scaling(stub)
        m.test_headline_sypd(stub)

    def test_bench_ablations(self, stub, mesh_g3):
        from benchmarks import bench_ablations as m

        m.test_ablation_halo_aggregation(stub, mesh_g3)
        m.test_ablation_bfs_reorder(stub, mesh_g3)
        m.test_ablation_insensitive_terms_tolerate_fp32(
            stub, "kinetic_energy_gradient"
        )
        m.test_ablation_full_mixed_within_threshold(stub)
        m.test_ablation_address_distribution_end_to_end(stub)

    def test_bench_table3(self, stub, mesh_g2, vcoord8):
        from benchmarks import bench_table3_schemes as m
        from repro.experiments.workflow import train_ml_suite

        trained = train_ml_suite(
            mesh_g2, vcoord8, periods=TABLE1_PERIODS[:1],
            hours_per_period=4, epochs=2, width=12, n_resunits=1,
        )
        m.test_table3_all_schemes(stub, mesh_g2, vcoord8, trained)


class TestHotpathBench:
    """The hot-path baseline driver: JSON shape, dtype contract, and the
    regression gate's pass/fail logic."""

    def test_tiny_run_and_check(self, tmp_path):
        import json

        from benchmarks import bench_hotpath as m

        out = tmp_path / "bench.json"
        rc = m.main(["--tiny", "--iters", "3", "--out", str(out)])
        assert rc == 0
        res = json.loads(out.read_text())
        assert res["schema"] == m.SCHEMA
        g3 = res["grids"]["G3"]
        ex = g3["exchange"]
        assert ex["legacy"]["seconds_per_exchange"] > 0
        assert ex["plan"]["seconds_per_exchange"] > 0
        assert ex["speedup"] > 0
        # Identical field sets -> identical wire bytes (all float64).
        assert ex["plan"]["wire_bytes"] == ex["legacy"]["wire_bytes"]
        assert ex["plan"]["messages"] == ex["legacy"]["messages"]
        # MIXED payload: the plan wire is strictly smaller (float32
        # travels at 4 bytes/elem; legacy upcasts to 8).
        exm = g3["exchange_mixed"]
        assert exm["plan"]["wire_bytes"] < exm["legacy"]["wire_bytes"]
        assert all(g3["mixed_roundtrip"].values()), g3["mixed_roundtrip"]
        assert g3["step"]["seconds_per_step"] > 0
        # The tracer saw the halo spans of both paths.
        assert any("halo_exchange" in k for k in ex["plan"]["spans"])
        # The gate passes against its own numbers and trips on a fake
        # baseline claiming a much larger speedup.
        assert m.check_regression(res, str(out)) == []
        fake = json.loads(out.read_text())
        fake["grids"]["G3"]["exchange"]["speedup"] = 1e9
        fake_path = tmp_path / "fake.json"
        fake_path.write_text(json.dumps(fake))
        assert m.check_regression(res, str(fake_path))


class TestSubstrateBench:
    """The substrate fast-path driver: JSON shape, bitwise contracts,
    and the profile-matched regression gate."""

    def test_tiny_run_and_check(self, tmp_path):
        import json

        from benchmarks import bench_substrate as m

        out = tmp_path / "bench.json"
        rc = m.main(["--tiny", "--out", str(out)])
        assert rc == 0
        res = json.loads(out.read_text())
        assert res["schema"] == m.SCHEMA
        assert set(res["profiles"]) == {"tiny"}
        p = res["profiles"]["tiny"]
        # Every fast path must have honoured its bitwise contract.
        for key in ("g4_stream", "thrash_fig6"):
            r = p["ldcache"][key]
            assert r["stats_bitwise_identical"]
            assert r["tag_age_bitwise_identical"]
            assert r["batch_seconds"] > 0
        assert p["swgomp"]["accounting_identical"]
        for r in p["rank_stepping"]["workers"].values():
            assert r["bitwise_identical"]
        assert p["ml_inference"]["tendency_cnn"]["fp32_vs_fp64_max_rel_err"] < 1e-4
        assert p["host_cpus"] >= 1

        # The gate passes against its own numbers...
        assert m.check_regression(res, str(out)) == []
        # ...trips on a baseline claiming a much larger speedup...
        fake = json.loads(out.read_text())
        fake["profiles"]["tiny"]["ldcache"]["g4_stream"]["speedup"] = 1e9
        fake_path = tmp_path / "fake.json"
        fake_path.write_text(json.dumps(fake))
        assert m.check_regression(res, str(fake_path))
        # ...and fails loudly when no profile has a baseline twin.
        orphan = {"schema": m.SCHEMA, "profiles": {"full": res["profiles"]["tiny"]}}
        orphan_path = tmp_path / "orphan.json"
        orphan_path.write_text(json.dumps(orphan))
        assert m.check_regression(res, str(orphan_path))

    def test_committed_baseline_has_both_profiles(self):
        import json
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).parent.parent / "BENCH_substrate.json").read_text()
        )
        assert set(baseline["profiles"]) >= {"tiny", "full"}


class TestParallelBench:
    """The lockstep-vs-overlap driver: JSON shape, equality contracts,
    and the cpu-gated speedup logic of the regression gate."""

    def test_tiny_run_and_check(self, tmp_path):
        import json

        from benchmarks import bench_parallel_layer as m

        out = tmp_path / "bench.json"
        rc = m.main(["--tiny", "--out", str(out)])
        assert rc == 0
        res = json.loads(out.read_text())
        assert res["schema"] == m.SCHEMA
        assert set(res["profiles"]) == {"tiny"}
        p = res["profiles"]["tiny"]
        ov = p["overlap"]
        # Correctness contracts are unconditional.
        assert ov["lockstep_bitwise_vs_serial"]
        assert all(ov["overlap_contract"].values()), ov["overlap_contract"]
        assert 0.0 <= ov["overlap_fraction"] <= 1.0
        assert ov["overlap_windows"] > 0
        assert ov["steal_stats"]["tasks"] > 0
        assert p["halo_fraction"]["monotone_in_ranks"]

        # The gate passes against its own numbers...
        assert m.check_regression(res, str(out)) == []
        # ...a broken equality contract trips it regardless of cores...
        bad = json.loads(out.read_text())
        bad["profiles"]["tiny"]["overlap"]["overlap_contract"]["u"] = False
        assert m.check_regression(bad, str(out))
        # ...the speedup gate only arms on hosts with spare cores...
        fast = json.loads(out.read_text())
        fast["profiles"]["tiny"]["overlap"]["overlap_vs_lockstep_speedup"] = 1e9
        fast["profiles"]["tiny"]["host_cpus"] = 64
        fast_path = tmp_path / "fast.json"
        fast_path.write_text(json.dumps(fast))
        gated = json.loads(out.read_text())
        gated["profiles"]["tiny"]["host_cpus"] = 64
        assert m.check_regression(gated, str(fast_path))
        # ...and stands down when either host lacks them.
        assert m.check_regression(res, str(fast_path)) == []
        # No baseline twin at all fails loudly.
        orphan = {"schema": m.SCHEMA,
                  "profiles": {"full": res["profiles"]["tiny"]}}
        orphan_path = tmp_path / "orphan.json"
        orphan_path.write_text(json.dumps(orphan))
        assert m.check_regression(res, str(orphan_path))

    def test_committed_baseline_has_both_profiles(self):
        import json
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).parent.parent / "BENCH_parallel.json").read_text()
        )
        assert set(baseline["profiles"]) >= {"tiny", "full"}
        full = baseline["profiles"]["full"]["overlap"]
        # The acceptance configuration is pinned: G4, workers=2.
        assert full["level"] == 4
        assert full["workers"] == 2
        assert full["lockstep_bitwise_vs_serial"]
        assert all(full["overlap_contract"].values())


class TestEnsembleBench:
    """The ensemble-engine driver: JSON shape, the per-scenario bitwise
    booleans, and the profile-matched regression gate."""

    def test_tiny_run_and_check(self, tmp_path):
        import json

        from benchmarks import bench_ensemble as m
        from repro.ensemble import scenario_names

        out = tmp_path / "bench.json"
        rc = m.main(["--tiny", "--out", str(out)])
        assert rc == 0
        res = json.loads(out.read_text())
        assert res["schema"] == m.SCHEMA
        assert set(res["profiles"]) == {"tiny"}
        p = res["profiles"]["tiny"]
        # Every registered scenario was swept, and each honoured the
        # bitwise oracle + shared-plan contract.
        assert set(p["points"]) == set(scenario_names())
        for name, point in p["points"].items():
            assert all(point["correct"].values()), (name, point["correct"])
            assert point["loop"]["wall_seconds"] > 0
            assert point["batch"]["wall_seconds"] > 0

        # The gate passes against its own numbers...
        assert m.check_regression(res, str(out)) == []
        # ...trips on a baseline claiming a much larger speedup...
        fake = json.loads(out.read_text())
        fake["profiles"]["tiny"]["points"]["tropical"]["batch_speedup"] = 1e9
        fake_path = tmp_path / "fake.json"
        fake_path.write_text(json.dumps(fake))
        assert m.check_regression(res, str(fake_path))
        # ...and fails loudly when no profile has a baseline twin.
        orphan = {"schema": m.SCHEMA,
                  "profiles": {"full": res["profiles"]["tiny"]}}
        orphan_path = tmp_path / "orphan.json"
        orphan_path.write_text(json.dumps(orphan))
        assert m.check_regression(res, str(orphan_path))

    def test_committed_baseline_has_both_profiles(self):
        import json
        from pathlib import Path

        baseline = json.loads(
            (Path(__file__).parent.parent / "BENCH_ensemble.json").read_text()
        )
        assert set(baseline["profiles"]) >= {"tiny", "full"}
        for profile in baseline["profiles"].values():
            for point in profile["points"].values():
                assert all(point["correct"].values())


class TestFigureDriversTinySize:
    """fig7/fig8 take minutes full-size; smoke their drivers tiny."""

    def test_fig7_comparison_driver(self):
        from benchmarks.bench_fig7_doksuri import run_comparison

        # hours must cover one physics interval at the coarsest level
        # (G2 needs ~3.5 h for a single physics step).
        res = run_comparison(low_level=2, high_level=3, ref_level=3,
                             nlev=4, hours=4.0)
        assert {"corr_low", "corr_high", "box_mean_low", "box_mean_high",
                "box_mean_ref", "min_ps_low", "min_ps_high"} <= set(res)
        for key, v in res.items():
            assert np.isfinite(v), key
        assert -1.0 <= res["corr_low"] <= 1.0
        assert -1.0 <= res["corr_high"] <= 1.0
        assert res["min_ps_low"] > 0.0 and res["min_ps_high"] > 0.0

    def test_fig7b_driver(self):
        from benchmarks.bench_fig7_doksuri import run_horizontal_vs_vertical

        corr_low, corr_high = run_horizontal_vs_vertical(
            low_level=2, low_nlev=8, high_level=3, high_nlev=4,
            ref_level=3, ref_nlev=4, hours=4.0,
        )
        assert np.isfinite(corr_low) and np.isfinite(corr_high)
        assert -1.0 <= corr_low <= 1.0
        # ref and high runs are identical at tiny size, so the correlation
        # is exactly 1.0 — unless the box rain is still constant (usually
        # all-zero this early), where spatial_correlation falls back to 0.0.
        assert corr_high == pytest.approx(1.0) or corr_high == 0.0

    def test_fig8ab_driver(self, tiny_trained):
        from benchmarks.bench_fig8_ml_physics import run_short_integration

        mesh, vc, trained = tiny_trained
        # run_hours must cover one G2 physics interval (~3.5 h) so each
        # suite records at least one precipitation snapshot.
        res = run_short_integration(mesh, vc, trained.suite,
                                    spinup_hours=2.0, run_hours=4.0, seed=1)
        assert {"conv_mean_mm_day", "ml_mean_mm_day", "pattern_correlation",
                "zonal_band_correlation"} <= set(res)
        assert res["conv_mean_mm_day"] >= 0.0
        assert res["ml_mean_mm_day"] >= 0.0
        assert np.isfinite(res["pattern_correlation"])

    def test_fig8cf_driver(self, tiny_trained):
        from benchmarks.bench_fig8_ml_physics import run_resolution_adaptive

        mesh, vc, trained = tiny_trained
        mesh3, res = run_resolution_adaptive(vc, trained.suite, level=3,
                                             hours=2.0, seed=2)
        assert mesh3.nc == 642
        assert np.isfinite(res.mean_precip).all()
        assert res.mean_precip.shape == (mesh3.nc,)
        assert res.mean_precip.min() >= 0.0

    def test_fig8_training_metadata(self, tiny_trained):
        _, _, trained = tiny_trained
        assert trained.n_train > 0 and trained.n_test > 0
        assert np.isfinite(trained.tendency_test_mse)
        assert np.isfinite(trained.radiation_test_mse)
