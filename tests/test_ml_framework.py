"""Tests of the NumPy NN framework: layers, gradients, optimisers,
training protocol."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.layers import Conv1D, Dense, ReLU
from repro.ml.network import ResUnit, Sequential, gradient_check
from repro.ml.optimizer import SGD, Adam
from repro.ml.training import Normalizer, Trainer, train_test_split_by_day


class TestDense:
    def test_forward_shape(self):
        d = Dense(5, 3)
        y = d.forward(np.zeros((7, 5)))
        assert y.shape == (7, 3)

    def test_gradient_check(self, rng):
        net = Sequential(Dense(6, 10), ReLU(), Dense(10, 4))
        err = gradient_check(net, rng.normal(size=(8, 6)))
        assert err < 1e-5

    def test_linearity(self, rng):
        d = Dense(4, 2)
        x = rng.normal(size=(3, 4))
        y1 = d.forward(2.0 * x, train=False)
        y2 = 2.0 * d.forward(x, train=False) - d.b
        np.testing.assert_allclose(y1, y2, atol=1e-12)


class TestConv1D:
    def test_same_padding_shape(self, rng):
        c = Conv1D(3, 5, k=3)
        y = c.forward(rng.normal(size=(2, 3, 11)))
        assert y.shape == (2, 5, 11)

    def test_1x1_kernel_is_pointwise(self, rng):
        c = Conv1D(3, 2, k=1)
        x = rng.normal(size=(4, 3, 7))
        y = c.forward(x, train=False)
        manual = np.einsum("oi,bil->bol", c.W[:, :, 0], x) + c.b[None, :, None]
        np.testing.assert_allclose(y, manual, atol=1e-12)

    def test_translation_equivariance_interior(self, rng):
        """Shifting the input shifts the output (away from boundaries)."""
        c = Conv1D(2, 2, k=3)
        x = rng.normal(size=(1, 2, 20))
        xs = np.roll(x, 3, axis=2)
        y = c.forward(x, train=False)
        ys = c.forward(xs, train=False)
        np.testing.assert_allclose(ys[:, :, 5:17], np.roll(y, 3, axis=2)[:, :, 5:17],
                                   atol=1e-12)

    def test_gradient_check(self, rng):
        net = Sequential(Conv1D(2, 6, 3), ReLU(), Conv1D(6, 2, 3))
        err = gradient_check(net, rng.normal(size=(3, 2, 9)))
        assert err < 1e-5

    def test_even_kernel_rejected(self):
        with pytest.raises(ValueError):
            Conv1D(2, 2, k=4)


class TestResUnit:
    def test_identity_at_zero_weights(self, rng):
        inner = Dense(5, 5)
        inner.W[:] = 0.0
        inner.b[:] = 0.0
        r = ResUnit(inner)
        x = rng.normal(size=(4, 5))
        np.testing.assert_array_equal(r.forward(x), x)

    def test_gradient_check(self, rng):
        net = Sequential(
            Dense(4, 8), ReLU(),
            ResUnit(Dense(8, 8), ReLU(), Dense(8, 8)),
            ResUnit(Dense(8, 8), ReLU()),
            Dense(8, 2),
        )
        err = gradient_check(net, rng.normal(size=(6, 4)))
        assert err < 1e-5

    def test_shape_change_rejected(self, rng):
        r = ResUnit(Dense(4, 5))
        with pytest.raises(ValueError):
            r.forward(rng.normal(size=(2, 4)))


class TestInferenceMode:
    """``train=False`` must allocate no backward caches — the memory
    contract the coupled-model inference loop relies on."""

    def _net(self):
        rng = np.random.default_rng(0)
        return Sequential(Conv1D(3, 4, 3, rng), ReLU(), Conv1D(4, 2, 3, rng))

    def test_inference_leaves_caches_none(self):
        net = self._net()
        x = np.random.default_rng(1).normal(size=(5, 3, 8))
        net.forward(x, train=False)
        for layer in net.layers:
            if isinstance(layer, Conv1D):
                assert layer._xp is None
            if isinstance(layer, ReLU):
                assert layer._mask is None

    def test_inference_clears_training_caches(self):
        """A training forward then an inference forward must not retain
        the stale training batch."""
        net = self._net()
        rng = np.random.default_rng(2)
        net.forward(rng.normal(size=(64, 3, 8)), train=True)
        net.forward(rng.normal(size=(5, 3, 8)), train=False)
        for layer in net.layers:
            if isinstance(layer, Conv1D):
                assert layer._xp is None

    def test_dense_relu_inference_caches_none(self):
        rng = np.random.default_rng(3)
        dense, relu = Dense(6, 4, rng), ReLU()
        x = rng.normal(size=(10, 6))
        relu.forward(dense.forward(x, train=False), train=False)
        assert dense._x is None
        assert relu._mask is None

    def test_train_and_inference_outputs_identical(self):
        net = self._net()
        x = np.random.default_rng(4).normal(size=(5, 3, 8))
        np.testing.assert_array_equal(
            net.forward(x, train=True), net.forward(x, train=False)
        )


class TestCastNetwork:
    def test_cast_is_a_deep_copy(self):
        from repro.ml.network import cast_network

        net = Sequential(Dense(4, 3, np.random.default_rng(0)))
        clone = cast_network(net, np.float32)
        assert clone is not net
        assert clone.layers[0].W.dtype == np.float32
        # The original is untouched.
        assert net.layers[0].W.dtype == np.float64
        clone.layers[0].W[:] = 0.0
        assert not np.all(net.layers[0].W == 0.0)

    def test_cast_recurses_through_resunits(self):
        from repro.ml.network import cast_network

        rng = np.random.default_rng(1)
        net = Sequential(
            Conv1D(3, 4, 3, rng), ResUnit(Conv1D(4, 4, 3, rng), ReLU())
        )
        clone = cast_network(net, np.float32)
        for p in clone.params().values():
            assert p.dtype == np.float32

    def test_float32_forward_close_to_float64(self):
        from repro.ml.network import cast_network

        rng = np.random.default_rng(2)
        net = Sequential(Conv1D(3, 8, 3, rng), ReLU(), Conv1D(8, 2, 3, rng))
        x = rng.normal(size=(6, 3, 10))
        y64 = net.forward(x, train=False)
        y32 = cast_network(net, np.float32).forward(
            x.astype(np.float32), train=False
        )
        assert y32.dtype == np.float32
        scale = np.max(np.abs(y64))
        assert np.max(np.abs(y32 - y64)) / scale < 1e-5


class TestOptimizers:
    def _quadratic_net(self):
        d = Dense(3, 1, rng=np.random.default_rng(0))
        return Sequential(d)

    @pytest.mark.parametrize("opt_cls,kw", [(SGD, {"lr": 0.05}), (Adam, {"lr": 0.05})])
    def test_converges_on_linear_regression(self, opt_cls, kw, rng):
        net = self._quadratic_net()
        opt = opt_cls(net, **kw)
        w_true = np.array([[1.0], [-2.0], [0.5]])
        x = rng.normal(size=(256, 3))
        y = x @ w_true + 0.3
        for _ in range(400):
            pred = net.forward(x)
            diff = pred - y
            opt.zero_grad()
            net.backward(2.0 * diff / diff.size)
            opt.step()
        loss = float(((net.forward(x, train=False) - y) ** 2).mean())
        assert loss < 1e-3

    def test_adam_steps_bounded_by_lr(self):
        net = Sequential(Dense(2, 2))
        opt = Adam(net, lr=0.01)
        p0 = {k: v.copy() for k, v in net.params().items()}
        for g in net.grads().values():
            g[:] = 1e9                       # huge gradient
        opt.step()
        for k, v in net.params().items():
            assert np.abs(v - p0[k]).max() < 0.011   # ~lr per step


class TestTrainer:
    def test_loss_decreases(self, rng):
        x = rng.normal(size=(300, 4))
        y = x[:, :2] * 2.0
        net = Sequential(Dense(4, 16), ReLU(), Dense(16, 2))
        tr = Trainer(net, lr=3e-3)
        h = tr.fit(x, y, epochs=25, batch_size=32)
        assert h.train_loss[-1] < 0.3 * h.train_loss[0]

    def test_test_loss_recorded(self, rng):
        x = rng.normal(size=(100, 3))
        y = x.sum(axis=1, keepdims=True)
        net = Sequential(Dense(3, 1))
        tr = Trainer(net, lr=1e-2)
        h = tr.fit(x[:80], y[:80], epochs=3, x_test=x[80:], y_test=y[80:])
        assert len(h.test_loss) == 3


class TestSplitProtocol:
    def test_seven_to_one_ratio(self):
        """Paper: 3 random test steps per 24-step day -> exactly 7:1."""
        tr, te = train_test_split_by_day(480, steps_per_day=24, test_per_day=3)
        assert tr.size / te.size == 7.0
        assert te.size == 60

    def test_no_overlap_full_cover(self):
        tr, te = train_test_split_by_day(240)
        assert np.intersect1d(tr, te).size == 0
        assert np.union1d(tr, te).size == 240

    def test_three_test_steps_each_day(self):
        _, te = train_test_split_by_day(240, steps_per_day=24, test_per_day=3)
        days = te // 24
        counts = np.bincount(days, minlength=10)
        assert np.all(counts == 3)

    def test_reproducible(self):
        a = train_test_split_by_day(100, seed=5)
        b = train_test_split_by_day(100, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    @given(st.integers(min_value=24, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_property_partition(self, n):
        tr, te = train_test_split_by_day(n)
        assert np.union1d(tr, te).size == n
        assert np.intersect1d(tr, te).size == 0


class TestNormalizer:
    def test_roundtrip(self, rng):
        x = rng.normal(3.0, 5.0, size=(50, 4))
        nz = Normalizer().fit(x)
        np.testing.assert_allclose(nz.inverse(nz.transform(x)), x, atol=1e-10)

    def test_standardises(self, rng):
        x = rng.normal(3.0, 5.0, size=(500, 4))
        z = Normalizer().fit(x).transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-6)
