"""Tests of the LDCache simulator and the Fig. 6 thrashing mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sunway.allocator import PoolAllocator
from repro.sunway.ldcache import (
    LDCache,
    analytic_loop_hit_ratio,
    loop_access_stream,
    loop_hit_ratio,
)


class TestLDCacheBasics:
    def test_geometry(self):
        c = LDCache()
        assert c.n_sets == 128
        assert c.way_bytes == 32 * 1024
        assert c.size_bytes == 128 * 1024

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            LDCache(size_bytes=1000, ways=3, line_bytes=256)

    def test_first_access_misses_second_hits(self):
        c = LDCache()
        assert c.access(0x1000) is False
        assert c.access(0x1000) is True
        assert c.access(0x10FF) is True      # same line (256B)
        assert c.access(0x1100) is False     # next line

    def test_lru_eviction_order(self):
        c = LDCache(size_bytes=4 * 256, ways=4, line_bytes=256)  # 1 set
        for i in range(4):
            c.access(i * 256)
        assert c.access(0) is True           # 0 still resident
        c.access(4 * 256)                    # evicts LRU = line 1
        assert c.access(1 * 256) is False
        assert c.access(0) is True

    def test_stats_accumulate(self):
        c = LDCache()
        c.run(np.array([0, 0, 256, 256, 512]))
        assert c.stats.accesses == 5
        assert c.stats.hits == 2
        assert c.stats.misses == 3

    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_property_repeat_stream_all_hits(self, addrs):
        """Re-running a short stream that fits in cache hits 100 %."""
        lines = {a // 256 for a in addrs}
        c = LDCache()
        if len(lines) > c.ways:  # may not fit one set; restrict to few lines
            return
        c.run(np.array(addrs))
        c.stats = type(c.stats)()
        c.run(np.array(addrs))
        assert c.stats.hit_ratio == 1.0


class TestThrashingMechanism:
    """The Fig. 6 story, measured on the real simulator."""

    def _aligned_bases(self, k):
        alloc = PoolAllocator(distribute=False)
        return [alloc.malloc(40 * 1024, f"a{k}") for k in range(k)]

    def _distributed_bases(self, k):
        alloc = PoolAllocator(distribute=True)
        return [alloc.malloc(40 * 1024, f"a{k}") for k in range(k)]

    def test_few_arrays_no_thrash_even_aligned(self):
        hr = loop_hit_ratio(self._aligned_bases(4), n_iters=2000)
        assert hr > 0.9

    def test_many_aligned_arrays_thrash(self):
        hr = loop_hit_ratio(self._aligned_bases(6), n_iters=2000)
        assert hr < 0.1

    def test_distribution_fixes_thrash(self):
        hr_aligned = loop_hit_ratio(self._aligned_bases(6), n_iters=2000)
        hr_dist = loop_hit_ratio(self._distributed_bases(6), n_iters=2000)
        assert hr_dist > 0.9
        assert hr_dist > hr_aligned + 0.8

    def test_analytic_matches_simulator_streaming(self):
        sim = loop_hit_ratio(self._distributed_bases(6), n_iters=4000)
        ana = analytic_loop_hit_ratio(6, distributed=True)
        assert sim == pytest.approx(ana, abs=0.02)

    def test_analytic_thrash_case(self):
        assert analytic_loop_hit_ratio(8, distributed=False) == 0.0
        assert analytic_loop_hit_ratio(3, distributed=False) > 0.9


class TestAccessStream:
    def test_interleaved_shape(self):
        s = loop_access_stream([0, 1000], n_iters=5)
        assert s.shape == (10,)
        assert s[0] == 0 and s[1] == 1000 and s[2] == 8

    def test_sequential_layout(self):
        s = loop_access_stream([0, 1000], n_iters=3, interleave=False)
        np.testing.assert_array_equal(s, [0, 8, 16, 1000, 1008, 1016])


class TestAllocator:
    def test_without_distribution_same_set(self):
        alloc = PoolAllocator(distribute=False)
        bases = [alloc.malloc(40 * 1024) for _ in range(6)]
        assert alloc.set_spread() == 1
        assert all(b % alloc.way_bytes == 0 for b in bases)

    def test_with_distribution_spread(self):
        alloc = PoolAllocator(distribute=True)
        [alloc.malloc(40 * 1024) for _ in range(8)]
        assert alloc.set_spread() == 8

    def test_allocations_do_not_overlap(self):
        alloc = PoolAllocator(distribute=True)
        allocs = []
        for i in range(10):
            base = alloc.malloc(1000 * (i + 1))
            allocs.append((base, base + 1000 * (i + 1)))
        allocs.sort()
        for (a0, a1), (b0, _) in zip(allocs, allocs[1:]):
            assert a1 <= b0

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            PoolAllocator().malloc(0)

    def test_reset(self):
        alloc = PoolAllocator()
        alloc.malloc(100)
        alloc.reset()
        assert alloc.allocations == []
