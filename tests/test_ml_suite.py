"""Tests of the ML physics suite: the two networks, coarse graining with
residual Q1/Q2, the Table-1 data pipeline, and the coupled suite."""

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import tropical_profile_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.ml.coarse_grain import CoarseGrainer, residual_q1q2
from repro.ml.data import (
    TABLE1_PERIODS,
    build_radiation_dataset,
    build_tendency_dataset,
    generate_archive,
    period_sst,
)
from repro.ml.radiation_net import RadiationMLP
from repro.ml.tendency_net import TendencyCNN


@pytest.fixture(scope="module")
def mesh2():
    return build_mesh(2)


@pytest.fixture(scope="module")
def mesh3():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.stretched(8)


class TestTendencyCNN:
    def test_paper_architecture(self):
        """Section 3.2.3: 5 ResUnits, 11-layer CNN, ~0.5M parameters."""
        net = TendencyCNN(nlev=30)
        assert net.conv_layers == 11
        assert 4.0e5 < net.n_params() < 6.0e5

    def test_io_shapes(self, rng):
        net = TendencyCNN(nlev=12, width=16, n_resunits=2)
        x = rng.normal(size=(9, 5, 12))
        y = rng.normal(size=(9, 2, 12))
        net.fit_normalizers(x, y)
        out = net.predict(x)
        assert out.shape == (9, 2, 12)

    def test_pack_order_matches_section_324(self, rng):
        """Inputs are (U, V, T, Q, P) per the coupling interface."""
        profiles = [rng.normal(size=(4, 6)) for _ in range(5)]
        x = TendencyCNN.pack_inputs(*profiles)
        for i, p in enumerate(profiles):
            np.testing.assert_array_equal(x[:, i, :], p)

    def test_unfitted_normalizer_raises(self, rng):
        net = TendencyCNN(nlev=6, width=8, n_resunits=1)
        with pytest.raises(RuntimeError):
            net.predict(rng.normal(size=(2, 5, 6)))

    def test_learns_synthetic_mapping(self, rng):
        net = TendencyCNN(nlev=8, width=16, n_resunits=2)
        x = rng.normal(size=(600, 5, 8))
        y = np.stack([0.7 * x[:, 2] + x[:, 3], -0.5 * x[:, 3]], axis=1)
        net.fit_normalizers(x, y)
        from repro.ml.training import Trainer

        tr = Trainer(net.net, lr=2e-3)
        h = tr.fit(net.in_norm.transform(x), net.out_norm.transform(y),
                   epochs=12, batch_size=64)
        assert h.train_loss[-1] < 0.25 * h.train_loss[0]


class TestRadiationMLP:
    def test_paper_architecture(self):
        """Section 3.2.3: a 7-layer MLP with residual connections."""
        net = RadiationMLP(nlev=30)
        assert net.dense_layers == 7

    def test_inputs_include_tskin_coszr(self, rng):
        t = rng.normal(size=(3, 6))
        q = rng.normal(size=(3, 6))
        tskin = np.array([290.0, 295.0, 300.0])
        coszr = np.array([0.0, 0.5, 1.0])
        x = RadiationMLP.pack_inputs(t, q, tskin, coszr)
        assert x.shape == (3, 14)
        np.testing.assert_array_equal(x[:, -2], tskin)
        np.testing.assert_array_equal(x[:, -1], coszr)

    def test_outputs_nonnegative(self, rng):
        net = RadiationMLP(nlev=6, width=16)
        x = rng.normal(size=(40, 14))
        y = np.abs(rng.normal(size=(40, 2))) * 100.0
        net.fit_normalizers(x, y)
        out = net.predict(x)
        assert np.all(out >= 0.0)

    def test_flops_counts_matmuls(self):
        net = RadiationMLP(nlev=10, width=32)
        assert net.flops_per_column() > 0


class TestInferenceFastPath:
    """The compiled float32 inference path: float64 in/out at the suite
    boundary, tight agreement with the float64 reference, clean removal."""

    def _fitted_cnn(self, rng, nlev=8):
        net = TendencyCNN(nlev=nlev, width=8, n_resunits=1)
        x = rng.normal(size=(40, 5, nlev))
        net.fit_normalizers(x, rng.normal(size=(40, 2, nlev)))
        return net, x

    def test_compiled_cnn_outputs_float64_and_close(self, rng):
        net, x = self._fitted_cnn(rng)
        ref = net.predict(x)
        net.compile_inference(np.float32)
        out = net.predict(x)
        assert out.dtype == np.float64
        scale = np.max(np.abs(ref))
        assert np.max(np.abs(out - ref)) / scale < 1e-4

    def test_compile_none_restores_reference_path(self, rng):
        net, x = self._fitted_cnn(rng)
        ref = net.predict(x)
        net.compile_inference(np.float32)
        net.compile_inference(None)
        np.testing.assert_array_equal(net.predict(x), ref)

    def test_compiled_radiation_mlp_float64_and_nonnegative(self, rng):
        net = RadiationMLP(nlev=6, width=16)
        x = rng.normal(size=(40, 14))
        net.fit_normalizers(x, np.abs(rng.normal(size=(40, 2))) * 100.0)
        ref = net.predict(x)
        net.compile_inference(np.float32)
        out = net.predict(x)
        assert out.dtype == np.float64
        assert np.all(out >= 0.0)
        scale = np.max(np.abs(ref)) + 1e-30
        assert np.max(np.abs(out - ref)) / scale < 1e-4

    def test_inference_retains_no_training_caches(self, rng):
        """Repeated prediction must not hold activation-sized arrays —
        the compiled clone runs train=False throughout."""
        net, x = self._fitted_cnn(rng)
        net.compile_inference(np.float32)
        for _ in range(3):
            net.predict(x)
        from repro.ml.layers import Conv1D, Dense, ReLU

        for target in (net.net, net._infer_net):
            for layer in target.layers:
                if isinstance(layer, Conv1D):
                    assert layer._xp is None
                if isinstance(layer, Dense):
                    assert layer._x is None
                if isinstance(layer, ReLU):
                    assert layer._mask is None

    def test_suite_precision_hook_compiles_nets(self, mesh2, vc, rng):
        from repro.ml.suite import MLPhysicsSuite
        from repro.physics.surface import SurfaceModel, idealized_sst
        from repro.precision.policy import PrecisionPolicy

        tn, _ = self._fitted_cnn(rng, nlev=vc.nlev)
        rn = RadiationMLP(nlev=vc.nlev, width=16)
        xr = rng.normal(size=(40, 2 * vc.nlev + 2))
        rn.fit_normalizers(xr, np.abs(rng.normal(size=(40, 2))))
        sfc = SurfaceModel(land_mask=np.zeros(mesh2.nc),
                           sst=idealized_sst(mesh2.cell_lat))

        MLPhysicsSuite(mesh2, vc, sfc, tn, rn,
                       precision=PrecisionPolicy(mixed=True))
        assert tn._infer_net is not None
        assert rn._infer_net is not None
        assert tn._infer_dtype == np.float32

        tn2, _ = self._fitted_cnn(rng, nlev=vc.nlev)
        MLPhysicsSuite(mesh2, vc, sfc, tn2, rn,
                       precision=PrecisionPolicy(mixed=False))
        assert tn2._infer_net is None


class TestCoarseGrainer:
    def test_constant_field_exact(self, mesh2, mesh3):
        cg = CoarseGrainer(mesh3, mesh2)
        out = cg.restrict(np.full(mesh3.nc, 2.5))
        np.testing.assert_allclose(out, 2.5)

    def test_global_mean_preserved(self, mesh2, mesh3, rng):
        cg = CoarseGrainer(mesh3, mesh2)
        f = rng.normal(size=mesh3.nc)
        fine_mean = (f * mesh3.cell_area).sum()
        coarse = cg.restrict(f)
        coarse_mean = (coarse * cg.weight_sum).sum()
        assert coarse_mean == pytest.approx(fine_mean, rel=1e-10)

    def test_multilevel_field(self, mesh2, mesh3, rng):
        cg = CoarseGrainer(mesh3, mesh2)
        f = rng.normal(size=(mesh3.nc, 4))
        out = cg.restrict(f)
        assert out.shape == (mesh2.nc, 4)

    def test_ratio(self, mesh2, mesh3):
        cg = CoarseGrainer(mesh3, mesh2)
        assert cg.ratio == pytest.approx(mesh3.nc / mesh2.nc)

    def test_wrong_direction_rejected(self, mesh2, mesh3):
        with pytest.raises(ValueError):
            CoarseGrainer(mesh2, mesh3)

    def test_velocity_restriction_solid_body(self, mesh2, mesh3):
        """A solid-body flow coarse-grains to the same solid-body flow."""
        cg = CoarseGrainer(mesh3, mesh2)
        axis = np.array([0.0, 0.0, 1.0])
        un_f = np.einsum(
            "ej,ej->e", np.cross(axis, mesh3.edge_xyz), mesh3.edge_normal
        )[:, None] * np.ones(3)
        un_c = cg.restrict_edge_velocity(un_f)
        expected = np.einsum(
            "ej,ej->e", np.cross(axis, mesh2.edge_xyz), mesh2.edge_normal
        )[:, None] * np.ones(3)
        err = np.abs(un_c - expected).max() / np.abs(expected).max()
        assert err < 0.15

    def test_restrict_state(self, mesh2, mesh3, vc):
        cg = CoarseGrainer(mesh3, mesh2)
        st = tropical_profile_state(mesh3, vc)
        cst = cg.restrict_state(st)
        assert cst.ps.shape == (mesh2.nc,)
        assert cst.u.shape == (mesh2.ne, vc.nlev)
        assert cst.total_dry_mass() == pytest.approx(st.total_dry_mass(), rel=1e-3)


class TestResidualQ1Q2:
    def test_zero_residual_for_consistent_dynamics(self, mesh2, mesh3, vc):
        """If the 'truth' IS the coarse dynamics forecast, Q1 = Q2 = 0."""
        cg = CoarseGrainer(mesh3, mesh2)
        st = tropical_profile_state(mesh3, vc)
        cg_t = cg.restrict_state(st)
        core = DynamicalCore(mesh2, vc, DycoreConfig(dt=300.0))
        truth = cg_t.copy()
        for _ in range(3):
            truth = core.step(truth)
        core2 = DynamicalCore(mesh2, vc, DycoreConfig(dt=300.0))
        q1, q2 = residual_q1q2(core2, cg_t, truth, 3)
        assert np.abs(q1).max() < 1e-10
        assert np.abs(q2).max() < 1e-10

    def test_heating_shows_up_in_q1(self, mesh2, mesh3, vc):
        """Truth warmed relative to the dyn forecast yields Q1 > 0."""
        cg = CoarseGrainer(mesh3, mesh2)
        st = tropical_profile_state(mesh3, vc)
        cg_t = cg.restrict_state(st)
        core = DynamicalCore(mesh2, vc, DycoreConfig(dt=300.0))
        truth = cg_t.copy()
        for _ in range(2):
            truth = core.step(truth)
        truth.theta = truth.theta + 0.6      # fake physics warming
        core2 = DynamicalCore(mesh2, vc, DycoreConfig(dt=300.0))
        q1, _ = residual_q1q2(core2, cg_t, truth, 2)
        assert q1.mean() > 0.0
        # Magnitude ~ 0.6 K * exner / 600 s.
        assert q1.max() < 0.01


class TestTable1Data:
    def test_periods_match_paper(self):
        assert len(TABLE1_PERIODS) == 4
        onis = [p.oni for p in TABLE1_PERIODS]
        assert onis == [2.2, 0.4, -0.4, -1.5]
        phases = [p.enso_phase for p in TABLE1_PERIODS]
        assert phases == ["El Nino", "neutral", "neutral", "La Nina"]

    def test_elnino_sst_warmer_in_east_pacific(self, mesh2):
        elnino = period_sst(mesh2, TABLE1_PERIODS[0])
        lanina = period_sst(mesh2, TABLE1_PERIODS[3])
        lon = np.mod(mesh2.cell_lon + np.pi, 2 * np.pi) - np.pi
        nino34 = (np.abs(mesh2.cell_lat) < np.deg2rad(5)) & (
            np.abs(lon - np.deg2rad(-120)) < np.deg2rad(25)
        )
        assert elnino[nino34].mean() > lanina[nino34].mean() + 2.0

    def test_mjo_phase_propagates(self, mesh2):
        p = TABLE1_PERIODS[1]
        s0 = period_sst(mesh2, p, time_days=0.0)
        s10 = period_sst(mesh2, p, time_days=10.0)
        assert not np.allclose(s0, s10)

    def test_archive_snapshot_contents(self, mesh2, vc):
        snaps = generate_archive(mesh2, vc, TABLE1_PERIODS[2], n_hours=2,
                                 spinup_hours=0.5)
        assert len(snaps) == 2
        s = snaps[-1]
        nlev = vc.nlev
        for arr, shape in [
            (s.u, (mesh2.nc, nlev)), (s.t, (mesh2.nc, nlev)),
            (s.q1, (mesh2.nc, nlev)), (s.gsw, (mesh2.nc,)),
            (s.coszr, (mesh2.nc,)),
        ]:
            assert arr.shape == shape
            assert np.isfinite(arr).all()

    def test_dataset_builders(self, mesh2, vc):
        snaps = generate_archive(mesh2, vc, TABLE1_PERIODS[2], n_hours=2,
                                 spinup_hours=0.5)
        x, y = build_tendency_dataset(snaps)
        assert x.shape == (2 * mesh2.nc, 5, vc.nlev)
        assert y.shape == (2 * mesh2.nc, 2, vc.nlev)
        xr, yr = build_radiation_dataset(snaps)
        assert xr.shape == (2 * mesh2.nc, 2 * vc.nlev + 2)
        assert yr.shape == (2 * mesh2.nc, 2)


class TestCoupledMLSuite:
    def test_trained_suite_runs_coupled(self, mesh2, vc):
        """End-to-end: train briefly, couple, integrate, stay finite."""
        from repro.experiments.workflow import train_ml_suite
        from repro.model.config import TABLE3_SCHEMES, scaled_grid_config
        from repro.model.grist import GristModel

        trained = train_ml_suite(
            mesh2, vc, periods=TABLE1_PERIODS[:1], hours_per_period=3,
            epochs=2, width=12, n_resunits=1,
        )
        assert trained.n_train > trained.n_test
        gc = scaled_grid_config(2, vc.nlev)
        trained.suite.config.dt_physics = gc.dt_physics
        model = GristModel(
            mesh2, vc, gc, TABLE3_SCHEMES["DP-ML"],
            surface=trained.suite.surface, physics_suite=trained.suite,
        )
        st = tropical_profile_state(mesh2, vc)
        st = model.run_hours(st, 8.0)
        assert np.isfinite(st.theta).all()
        assert np.isfinite(st.tracers["qv"]).all()
        assert st.tracers["qv"].min() >= 0.0
        assert len(model.history.precip) > 0
        assert np.all(np.asarray(model.history.precip) >= 0.0)

    def test_tendency_cap_enforced(self, mesh2, vc, rng):
        """The stabilisation cap bounds |Q1| regardless of net output."""
        from repro.ml.suite import MLPhysicsSuite, MLSuiteConfig
        from repro.model.coupler import CouplingInterface
        from repro.physics.surface import SurfaceModel, idealized_sst

        tn = TendencyCNN(nlev=vc.nlev, width=8, n_resunits=1)
        rn = RadiationMLP(nlev=vc.nlev, width=16)
        x = rng.normal(size=(50, 5, vc.nlev))
        y = rng.normal(size=(50, 2, vc.nlev)) * 1.0   # huge K/s targets
        tn.fit_normalizers(x, y)
        xr = rng.normal(size=(50, 2 * vc.nlev + 2))
        yr = np.abs(rng.normal(size=(50, 2))) * 300.0
        rn.fit_normalizers(xr, yr)
        sfc = SurfaceModel(land_mask=np.zeros(mesh2.nc),
                           sst=idealized_sst(mesh2.cell_lat))
        suite = MLPhysicsSuite(mesh2, vc, sfc, tn, rn,
                               MLSuiteConfig(dt_physics=600.0))
        st = tropical_profile_state(mesh2, vc)
        coupler = CouplingInterface(mesh2)
        fields = coupler.extract(st, sfc.skin_temperature(), np.zeros(mesh2.nc))
        tend = suite.compute_from_coupler(st, fields)
        cap = suite.config.tendency_cap_k_per_day / 86400.0
        assert np.abs(tend.dtheta * fields.exner_mid).max() <= cap + 1e-12
