"""Tests of the distributed-memory execution layer: local meshes,
cell+edge aggregated exchange, and serial-equivalence of the driver."""

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import baroclinic_wave_state, solid_body_rotation_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import PAD, build_mesh
from repro.parallel.driver import DistributedDycore
from repro.parallel.exchange import EdgeCellExchanger
from repro.parallel.localmesh import build_local_meshes
from repro.partition.decomposition import decompose
from repro.partition.graph import mesh_cell_graph
from repro.partition.metis import partition_graph


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def setup(mesh):
    part = partition_graph(mesh_cell_graph(mesh), 4, seed=0)
    subs = decompose(mesh, 4, part=part)
    locals_ = build_local_meshes(mesh, subs, part)
    return part, subs, locals_


class TestLocalMesh:
    def test_owned_cells_lead_numbering(self, setup):
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            np.testing.assert_array_equal(
                lm.cells[: lm.n_owned_cells], sub.local_cells[: sub.n_owned]
            )

    def test_two_ring_halo(self, mesh, setup):
        """Every neighbour of a first-ring halo cell is local."""
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            local_set = set(lm.cells.tolist())
            halo1 = sub.local_cells[sub.n_owned:]
            for c in halo1:
                for nb in mesh.cell_neighbors[c]:
                    if nb != PAD:
                        assert int(nb) in local_set

    def test_local_edges_cover_ring1_cells(self, mesh, setup):
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            edge_set = set(lm.edges.tolist())
            for c in sub.local_cells:
                for e in mesh.cell_edges[c]:
                    if e != PAD:
                        assert int(e) in edge_set

    def test_local_edge_endpoints_resolve(self, setup):
        """Both cells of every local edge are local (no dangling refs)."""
        part, subs, locals_ = setup
        for lm in locals_:
            assert lm.mesh.edge_cells.min() >= 0
            assert lm.mesh.edge_cells.max() < lm.n_cells

    def test_edge_ownership_partition(self, mesh, setup):
        """Every global edge is owned by exactly one rank."""
        part, subs, locals_ = setup
        owned = np.concatenate([lm.edges[: lm.n_owned_edges] for lm in locals_])
        assert np.array_equal(np.sort(owned), np.arange(mesh.ne))

    def test_geometry_preserved(self, mesh, setup):
        part, subs, locals_ = setup
        for lm in locals_:
            np.testing.assert_array_equal(lm.mesh.de, mesh.de[lm.edges])
            np.testing.assert_array_equal(
                lm.mesh.cell_area, mesh.cell_area[lm.cells]
            )

    def test_send_recv_mirrors(self, setup):
        part, subs, locals_ = setup
        for lm in locals_:
            for r, recv_idx in lm.cell_recv.items():
                peer = locals_[r]
                send_idx = peer.cell_send[lm.rank]
                np.testing.assert_array_equal(
                    peer.cells[send_idx], lm.cells[recv_idx]
                )
            for r, recv_idx in lm.edge_recv.items():
                peer = locals_[r]
                send_idx = peer.edge_send[lm.rank]
                np.testing.assert_array_equal(
                    peer.edges[send_idx], lm.edges[recv_idx]
                )


class TestEdgeCellExchanger:
    def test_fills_cell_and_edge_halos(self, mesh, setup):
        part, subs, locals_ = setup
        rng = np.random.default_rng(0)
        gc = rng.normal(size=(mesh.nc, 3))
        ge = rng.normal(size=(mesh.ne, 3))
        pc = [lm.scatter_cell_field(gc) for lm in locals_]
        pe = [lm.scatter_edge_field(ge) for lm in locals_]
        for lm, a, b in zip(locals_, pc, pe):
            a[lm.n_owned_cells:] = np.nan
            b[lm.n_owned_edges:] = np.nan
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("c", pc)
        ex.register_edge("e", pe)
        ex.exchange()
        for lm, a, b in zip(locals_, pc, pe):
            np.testing.assert_allclose(a, gc[lm.cells])
            np.testing.assert_allclose(b, ge[lm.edges])

    def test_single_message_per_pair(self, mesh, setup):
        part, subs, locals_ = setup
        ex = EdgeCellExchanger(locals_)
        rng = np.random.default_rng(1)
        for i in range(3):
            ex.register_cell(
                f"c{i}",
                [lm.scatter_cell_field(rng.normal(size=mesh.nc)) for lm in locals_],
            )
        ex.register_edge("u", [lm.scatter_edge_field(rng.normal(size=mesh.ne)) for lm in locals_])
        ex.comm.stats.reset()
        ex.exchange()
        assert ex.comm.stats.messages == ex.messages_per_exchange()

    def test_shape_check(self, setup):
        part, subs, locals_ = setup
        ex = EdgeCellExchanger(locals_)
        with pytest.raises(ValueError):
            ex.register_cell("bad", [np.zeros(3) for _ in locals_])


class TestSerialEquivalence:
    @pytest.mark.parametrize("nparts", [2, 4, 7])
    def test_solid_body_bitwise(self, mesh, nparts):
        vc = VerticalCoordinate.uniform(5)
        st0 = solid_body_rotation_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        s = st0.copy()
        for _ in range(4):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=nparts)
        dist.scatter(st0)
        dist.run(4)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)
        np.testing.assert_array_equal(theta, s.theta)

    def test_baroclinic_wave_bitwise(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        st0 = baroclinic_wave_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        s = st0.copy()
        for _ in range(6):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=450.0), nparts=5)
        dist.scatter(st0)
        dist.run(6)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)

    def test_mixed_precision_distributed(self, mesh):
        """The MIX policy decomposes identically too."""
        from repro.precision.policy import PrecisionPolicy

        vc = VerticalCoordinate.uniform(5)
        cfg = DycoreConfig(dt=600.0, policy=PrecisionPolicy(mixed=True))
        st0 = solid_body_rotation_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, cfg)
        s = st0.copy()
        for _ in range(3):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, cfg, nparts=4)
        dist.scatter(st0)
        dist.run(3)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)

    def test_requires_scatter_first(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=2)
        with pytest.raises(RuntimeError):
            dist.step()

    def test_comm_accounting(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=4)
        dist.scatter(solid_body_rotation_state(mesh, vc))
        dist.run(2)
        stats = dist.comm_stats()
        # 3 RK stages + 1 pre-sponge exchange per step, x 2 steps.
        assert stats["messages"] == 8 * stats["messages_per_exchange"]
        assert stats["bytes"] > 0
