"""Tests of the distributed-memory execution layer: local meshes,
cell+edge aggregated exchange, and serial-equivalence of the driver."""

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import baroclinic_wave_state, solid_body_rotation_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import PAD, build_mesh
from repro.parallel.driver import DistributedDycore
from repro.parallel.exchange import EdgeCellExchanger
from repro.parallel.localmesh import build_local_meshes
from repro.partition.decomposition import decompose
from repro.partition.graph import mesh_cell_graph
from repro.partition.metis import partition_graph


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def setup(mesh):
    part = partition_graph(mesh_cell_graph(mesh), 4, seed=0)
    subs = decompose(mesh, 4, part=part)
    locals_ = build_local_meshes(mesh, subs, part)
    return part, subs, locals_


class TestLocalMesh:
    def test_owned_cells_lead_numbering(self, setup):
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            np.testing.assert_array_equal(
                lm.cells[: lm.n_owned_cells], sub.local_cells[: sub.n_owned]
            )

    def test_two_ring_halo(self, mesh, setup):
        """Every neighbour of a first-ring halo cell is local."""
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            local_set = set(lm.cells.tolist())
            halo1 = sub.local_cells[sub.n_owned:]
            for c in halo1:
                for nb in mesh.cell_neighbors[c]:
                    if nb != PAD:
                        assert int(nb) in local_set

    def test_local_edges_cover_ring1_cells(self, mesh, setup):
        part, subs, locals_ = setup
        for lm, sub in zip(locals_, subs):
            edge_set = set(lm.edges.tolist())
            for c in sub.local_cells:
                for e in mesh.cell_edges[c]:
                    if e != PAD:
                        assert int(e) in edge_set

    def test_local_edge_endpoints_resolve(self, setup):
        """Both cells of every local edge are local (no dangling refs)."""
        part, subs, locals_ = setup
        for lm in locals_:
            assert lm.mesh.edge_cells.min() >= 0
            assert lm.mesh.edge_cells.max() < lm.n_cells

    def test_edge_ownership_partition(self, mesh, setup):
        """Every global edge is owned by exactly one rank."""
        part, subs, locals_ = setup
        owned = np.concatenate([lm.edges[: lm.n_owned_edges] for lm in locals_])
        assert np.array_equal(np.sort(owned), np.arange(mesh.ne))

    def test_geometry_preserved(self, mesh, setup):
        part, subs, locals_ = setup
        for lm in locals_:
            np.testing.assert_array_equal(lm.mesh.de, mesh.de[lm.edges])
            np.testing.assert_array_equal(
                lm.mesh.cell_area, mesh.cell_area[lm.cells]
            )

    def test_send_recv_mirrors(self, setup):
        part, subs, locals_ = setup
        for lm in locals_:
            for r, recv_idx in lm.cell_recv.items():
                peer = locals_[r]
                send_idx = peer.cell_send[lm.rank]
                np.testing.assert_array_equal(
                    peer.cells[send_idx], lm.cells[recv_idx]
                )
            for r, recv_idx in lm.edge_recv.items():
                peer = locals_[r]
                send_idx = peer.edge_send[lm.rank]
                np.testing.assert_array_equal(
                    peer.edges[send_idx], lm.edges[recv_idx]
                )


class TestEdgeCellExchanger:
    def test_fills_cell_and_edge_halos(self, mesh, setup):
        part, subs, locals_ = setup
        rng = np.random.default_rng(0)
        gc = rng.normal(size=(mesh.nc, 3))
        ge = rng.normal(size=(mesh.ne, 3))
        pc = [lm.scatter_cell_field(gc) for lm in locals_]
        pe = [lm.scatter_edge_field(ge) for lm in locals_]
        for lm, a, b in zip(locals_, pc, pe):
            a[lm.n_owned_cells:] = np.nan
            b[lm.n_owned_edges:] = np.nan
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("c", pc)
        ex.register_edge("e", pe)
        ex.exchange()
        for lm, a, b in zip(locals_, pc, pe):
            np.testing.assert_allclose(a, gc[lm.cells])
            np.testing.assert_allclose(b, ge[lm.edges])

    def test_single_message_per_pair(self, mesh, setup):
        part, subs, locals_ = setup
        ex = EdgeCellExchanger(locals_)
        rng = np.random.default_rng(1)
        for i in range(3):
            ex.register_cell(
                f"c{i}",
                [lm.scatter_cell_field(rng.normal(size=mesh.nc)) for lm in locals_],
            )
        ex.register_edge("u", [lm.scatter_edge_field(rng.normal(size=mesh.ne)) for lm in locals_])
        ex.comm.stats.reset()
        ex.exchange()
        assert ex.comm.stats.messages == ex.messages_per_exchange()

    def test_shape_check(self, setup):
        part, subs, locals_ = setup
        ex = EdgeCellExchanger(locals_)
        with pytest.raises(ValueError):
            ex.register_cell("bad", [np.zeros(3) for _ in locals_])

    def test_inconsistent_dtype_across_ranks_rejected(self, setup):
        part, subs, locals_ = setup
        ex = EdgeCellExchanger(locals_)
        fields = [np.zeros(lm.n_cells) for lm in locals_]
        fields[1] = fields[1].astype(np.float32)
        with pytest.raises(ValueError):
            ex.register_cell("bad", fields)


class TestExchangePlans:
    """The compiled exchange-plan layer: dtype preservation, true byte
    accounting, and zero per-step recompilation/allocation."""

    def _mixed_fields(self, mesh, locals_, seed=0):
        """A float64 cell field, a float32 cell field (the MIX dtype of
        insensitive terms), and a float32 edge field."""
        rng = np.random.default_rng(seed)
        g64 = rng.normal(size=(mesh.nc, 3))
        g32 = rng.normal(size=(mesh.nc, 2)).astype(np.float32)
        ge32 = rng.normal(size=mesh.ne).astype(np.float32)
        p64 = [lm.scatter_cell_field(g64) for lm in locals_]
        p32 = [lm.scatter_cell_field(g32) for lm in locals_]
        pe32 = [lm.scatter_edge_field(ge32) for lm in locals_]
        return (g64, g32, ge32), (p64, p32, pe32)

    def test_mixed_dtype_roundtrip(self, mesh, setup):
        """(a) float32 fields round-trip with dtype AND values intact."""
        part, subs, locals_ = setup
        (g64, g32, ge32), (p64, p32, pe32) = self._mixed_fields(mesh, locals_)
        for lm, a, b, c in zip(locals_, p64, p32, pe32):
            a[lm.n_owned_cells:] = np.nan
            b[lm.n_owned_cells:] = np.nan
            c[lm.n_owned_edges:] = np.nan
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("t64", p64)
        ex.register_cell("q32", p32)
        ex.register_edge("u32", pe32)
        ex.exchange()
        for lm, a, b, c in zip(locals_, p64, p32, pe32):
            assert a.dtype == np.float64
            assert b.dtype == np.float32
            assert c.dtype == np.float32
            # Bitwise: the wire never leaves the field's own dtype.
            np.testing.assert_array_equal(a, g64[lm.cells])
            np.testing.assert_array_equal(b, g32[lm.cells])
            np.testing.assert_array_equal(c, ge32[lm.edges])

    def test_no_float64_in_payload_path(self, mesh, setup):
        """Every compiled slot views the wire buffer at the field's own
        dtype; the buffer itself is raw bytes."""
        part, subs, locals_ = setup
        _, (p64, p32, pe32) = self._mixed_fields(mesh, locals_)
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("t64", p64)
        ex.register_cell("q32", p32)
        ex.register_edge("u32", pe32)
        dtype_of = {"t64": np.float64, "q32": np.float32, "u32": np.float32}
        for plan in ex.plans.values():
            assert plan.send_buffer.dtype == np.uint8
            for slot in plan.send_slots:
                assert slot.view.dtype == dtype_of[slot.name]
            for slot in plan.recv_slots:
                assert slot.dtype == dtype_of[slot.name]

    def test_true_wire_bytes_mixed(self, mesh, setup):
        """bytes_sent counts 4 bytes/elem for float32 fields, not 8."""
        part, subs, locals_ = setup
        _, (p64, p32, pe32) = self._mixed_fields(mesh, locals_)
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("t64", p64)
        ex.register_cell("q32", p32)
        ex.register_edge("u32", pe32)
        expected = 0
        for lm in locals_:
            for idx in lm.cell_send.values():
                expected += idx.size * 3 * 8 + idx.size * 2 * 4
            for idx in lm.edge_send.values():
                expected += idx.size * 4
        ex.comm.stats.reset()
        ex.exchange()
        assert ex.comm.stats.bytes_sent == expected
        assert ex.bytes_per_exchange() == expected
        # The legacy path upcast everything to float64 on the wire.
        ex_legacy = EdgeCellExchanger(locals_, use_plans=False)
        ex_legacy.register_cell("t64", p64)
        ex_legacy.register_cell("q32", p32)
        ex_legacy.register_edge("u32", pe32)
        ex_legacy.comm.stats.reset()
        ex_legacy.exchange()
        assert ex_legacy.comm.stats.bytes_sent > expected

    def test_plan_reuse_no_recompile_no_realloc(self, mesh, setup):
        """(b) the second exchange reuses the compiled plans and wire
        buffers — no recompilation, no concatenation, no fresh pack
        allocation — and the aggregation metric is unchanged."""
        part, subs, locals_ = setup
        rng = np.random.default_rng(3)
        pc = [lm.scatter_cell_field(rng.normal(size=(mesh.nc, 4))) for lm in locals_]
        pe = [lm.scatter_edge_field(rng.normal(size=mesh.ne)) for lm in locals_]
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("c", pc)
        ex.register_edge("e", pe)
        ex.exchange()
        assert ex.plan_compilations == 1
        plans_before = ex._plans
        buffer_ids = {k: id(p.send_buffer) for k, p in plans_before.items()}
        view_ids = {
            (k, s.name): id(s.view)
            for k, p in plans_before.items() for s in p.send_slots
        }
        msgs_per = ex.messages_per_exchange()
        import unittest.mock as mock
        with mock.patch.object(
            np, "concatenate",
            side_effect=AssertionError("hot path must not concatenate"),
        ):
            ex.exchange()
            ex.exchange()
        assert ex.plan_compilations == 1
        assert ex._plans is plans_before
        assert {k: id(p.send_buffer) for k, p in ex._plans.items()} == buffer_ids
        assert {
            (k, s.name): id(s.view)
            for k, p in ex._plans.items() for s in p.send_slots
        } == view_ids
        assert ex.messages_per_exchange() == msgs_per
        assert ex.comm.stats.messages == 3 * msgs_per

    def test_register_invalidates_plan(self, mesh, setup):
        part, subs, locals_ = setup
        rng = np.random.default_rng(4)
        gc = rng.normal(size=mesh.nc)
        pc = [lm.scatter_cell_field(gc) for lm in locals_]
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("a", pc)
        ex.exchange()
        assert ex.plan_compilations == 1
        g2 = rng.normal(size=(mesh.nc, 2)).astype(np.float32)
        p2 = [lm.scatter_cell_field(g2) for lm in locals_]
        for lm, arr in zip(locals_, p2):
            arr[lm.n_owned_cells:] = np.nan
        ex.register_cell("b", p2)
        ex.exchange()
        assert ex.plan_compilations == 2
        for lm, arr in zip(locals_, p2):
            np.testing.assert_array_equal(arr, g2[lm.cells])

    def test_replace_same_layout_keeps_plan(self, mesh, setup):
        part, subs, locals_ = setup
        rng = np.random.default_rng(5)
        pc = [lm.scatter_cell_field(rng.normal(size=mesh.nc)) for lm in locals_]
        ex = EdgeCellExchanger(locals_)
        ex.register_cell("a", pc)
        ex.exchange()
        g2 = rng.normal(size=mesh.nc)
        p2 = [lm.scatter_cell_field(g2) for lm in locals_]
        for lm, arr in zip(locals_, p2):
            arr[lm.n_owned_cells:] = np.nan
        ex.replace("a", p2)
        ex.exchange()
        assert ex.plan_compilations == 1
        for lm, arr in zip(locals_, p2):
            np.testing.assert_array_equal(arr, g2[lm.cells])
        # A dtype change does force a recompile.
        p3 = [arr.astype(np.float32) for arr in p2]
        ex.replace("a", p3)
        ex.exchange()
        assert ex.plan_compilations == 2

    def test_legacy_and_plan_paths_agree(self, mesh, setup):
        part, subs, locals_ = setup
        rng = np.random.default_rng(6)
        gc = rng.normal(size=(mesh.nc, 3))
        ge = rng.normal(size=mesh.ne)
        results = []
        for use_plans in (True, False):
            pc = [lm.scatter_cell_field(gc) for lm in locals_]
            pe = [lm.scatter_edge_field(ge) for lm in locals_]
            for lm, a, b in zip(locals_, pc, pe):
                a[lm.n_owned_cells:] = np.nan
                b[lm.n_owned_edges:] = np.nan
            ex = EdgeCellExchanger(locals_, use_plans=use_plans)
            ex.register_cell("c", pc)
            ex.register_edge("e", pe)
            ex.exchange()
            results.append((pc, pe))
        for a, b in zip(results[0][0], results[1][0]):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(results[0][1], results[1][1]):
            np.testing.assert_array_equal(a, b)


class TestSerialEquivalence:
    @pytest.mark.parametrize("nparts", [2, 4, 7])
    def test_solid_body_bitwise(self, mesh, nparts):
        vc = VerticalCoordinate.uniform(5)
        st0 = solid_body_rotation_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        s = st0.copy()
        for _ in range(4):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=nparts)
        dist.scatter(st0)
        dist.run(4)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)
        np.testing.assert_array_equal(theta, s.theta)

    def test_baroclinic_wave_bitwise(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        st0 = baroclinic_wave_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        s = st0.copy()
        for _ in range(6):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=450.0), nparts=5)
        dist.scatter(st0)
        dist.run(6)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)

    def test_mixed_precision_distributed(self, mesh):
        """The MIX policy decomposes identically too."""
        from repro.precision.policy import PrecisionPolicy

        vc = VerticalCoordinate.uniform(5)
        cfg = DycoreConfig(dt=600.0, policy=PrecisionPolicy(mixed=True))
        st0 = solid_body_rotation_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, cfg)
        s = st0.copy()
        for _ in range(3):
            s = serial.step(s)
        dist = DistributedDycore(mesh, vc, cfg, nparts=4)
        dist.scatter(st0)
        dist.run(3)
        ps, u, theta = dist.gather()
        np.testing.assert_array_equal(ps, s.ps)
        np.testing.assert_array_equal(u, s.u)

    def test_bitwise_across_plan_reuse_checkpoints(self, mesh):
        """(c) equality holds at successive checkpoints of ONE distributed
        run — the compiled plans and cached scratch states are reused
        across all steps without drift."""
        vc = VerticalCoordinate.uniform(5)
        st0 = solid_body_rotation_state(mesh, vc)
        serial = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=4)
        dist.scatter(st0)
        s = st0.copy()
        for _ in range(3):
            s = serial.run(s, 2)
            dist.run(2)
            ps, u, theta = dist.gather()
            np.testing.assert_array_equal(ps, s.ps)
            np.testing.assert_array_equal(u, s.u)
            np.testing.assert_array_equal(theta, s.theta)
        assert dist._exchanger.plan_compilations == 1

    def test_requires_scatter_first(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=2)
        with pytest.raises(RuntimeError):
            dist.step()

    def test_comm_accounting(self, mesh):
        vc = VerticalCoordinate.uniform(5)
        dist = DistributedDycore(mesh, vc, DycoreConfig(dt=600.0), nparts=4)
        dist.scatter(solid_body_rotation_state(mesh, vc))
        dist.run(2)
        stats = dist.comm_stats()
        # 3 RK stages + 1 pre-sponge exchange per step, x 2 steps.
        assert stats["messages"] == 8 * stats["messages_per_exchange"]
        assert stats["bytes"] > 0
