"""Tests of the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        sub = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        names = set(sub.choices)
        assert {"grids", "simulate", "doksuri", "scaling", "kernels",
                "train-ml"} <= names

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.level == 3
        assert args.scheme == "DP-PHY"


class TestCommands:
    def test_grids(self, capsys):
        assert main(["grids"]) == 0
        out = capsys.readouterr().out
        assert "G12" in out and "167,772,162" in out

    def test_kernels(self, capsys):
        assert main(["kernels", "--grid", "G6"]) == 0
        out = capsys.readouterr().out
        assert "tracer_transport_hori_flux_limiter" in out
        assert "MIX+DST" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "headline" in out
        assert "G11S" in out

    def test_simulate_with_outputs(self, tmp_path, capsys):
        restart = str(tmp_path / "restart.npz")
        rc = main([
            "simulate", "--level", "2", "--nlev", "6", "--hours", "4",
            "--out", str(tmp_path / "hist"), "--restart", restart,
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max wind" in out
        from repro.model.io import load_state

        st = load_state(restart)
        assert np.isfinite(st.ps).all()

    def test_train_ml_quick(self, capsys):
        rc = main([
            "train-ml", "--level", "2", "--nlev", "6", "--periods", "1",
            "--hours", "2", "--epochs", "1", "--width", "8",
            "--resunits", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tendency net" in out
