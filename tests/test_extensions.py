"""Tests of the extension modules: ice microphysics and orographic flow."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CP_DRY, GRAVITY, T_FREEZE
from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import mountain_flow_state
from repro.dycore.vertical import VerticalCoordinate, exner
from repro.grid.mesh import build_mesh
from repro.physics.ice_microphysics import (
    LATENT_HEAT_FUSION,
    LATENT_HEAT_SUB,
    ice_microphysics,
)


def _cold_columns(nc=30, nlev=6, seed=0):
    rng = np.random.default_rng(seed)
    p = np.linspace(2.5e4, 1.0e5, nlev)[None, :] * np.ones((nc, 1))
    dpi = np.full((nc, nlev), 1.2e4)
    ex = exner(p)
    # Temperatures straddling freezing: cold aloft, warm below.
    temp = np.linspace(230.0, 285.0, nlev)[None, :] + rng.normal(0, 3, (nc, nlev))
    qv = np.abs(rng.normal(0, 1, (nc, nlev))) * 2e-3 + 1e-4
    qc = np.abs(rng.normal(0, 1, (nc, nlev))) * 5e-4
    qi = np.abs(rng.normal(0, 1, (nc, nlev))) * 5e-4
    return temp, qv, qc, qi, p, dpi, ex


class TestIceMicrophysics:
    def test_water_conservation(self):
        temp, qv, qc, qi, p, dpi, ex = _cold_columns()
        dt = 600.0
        res = ice_microphysics(temp, qv, qc, qi, p, dpi, ex, dt)
        dwater = ((res.dqv + res.dqc + res.dqi) * dpi).sum(axis=1) / GRAVITY
        np.testing.assert_allclose(dwater, -res.precip_rate, rtol=1e-8, atol=1e-15)

    def test_no_negative_species(self):
        temp, qv, qc, qi, p, dpi, ex = _cold_columns(seed=3)
        dt = 600.0
        res = ice_microphysics(temp, qv, qc, qi, p, dpi, ex, dt)
        assert np.all(qv + dt * res.dqv >= -1e-12)
        assert np.all(qc + dt * res.dqc >= -1e-12)
        assert np.all(qi + dt * res.dqi >= -1e-12)

    def test_deposition_only_below_freezing(self):
        nc, nlev = 4, 3
        p = np.full((nc, nlev), 5e4)
        dpi = np.full((nc, nlev), 1e4)
        ex = exner(p)
        temp = np.full((nc, nlev), 280.0)      # warm: no deposition
        qv = np.full((nc, nlev), 5e-3)
        res = ice_microphysics(temp, qv, np.zeros_like(qv), np.zeros_like(qv),
                               p, dpi, ex, 600.0)
        np.testing.assert_allclose(res.dqv, 0.0, atol=1e-18)

    def test_deposition_warms(self):
        nc, nlev = 4, 3
        p = np.full((nc, nlev), 4e4)
        dpi = np.full((nc, nlev), 1e4)
        ex = exner(p)
        temp = np.full((nc, nlev), 245.0)
        # Strongly supersaturated w.r.t. ice.
        qv = np.full((nc, nlev), 3e-3)
        res = ice_microphysics(temp, qv, np.zeros_like(qv), np.zeros_like(qv),
                               p, dpi, ex, 600.0)
        assert res.dqv.max() < 0.0
        assert (res.dtheta * ex).min() > 0.0
        # Enthalpy: cp dT = L_s * (-dqv) where only deposition acts.
        np.testing.assert_allclose(
            CP_DRY * res.dtheta * ex, -LATENT_HEAT_SUB * res.dqv, rtol=1e-10
        )

    def test_melting_above_freezing(self):
        nc, nlev = 4, 3
        p = np.full((nc, nlev), 9e4)
        dpi = np.full((nc, nlev), 1e4)
        ex = exner(p)
        temp = np.full((nc, nlev), 278.0)
        qi = np.full((nc, nlev), 1e-3)
        res = ice_microphysics(temp, np.zeros_like(qi), np.zeros_like(qi), qi,
                               p, dpi, ex, 600.0)
        assert res.dqc.max() > 0.0             # melted to cloud water
        assert (res.dtheta * ex).max() < 0.0   # melting cools

    def test_snow_only_when_surface_cold(self):
        nc, nlev = 2, 3
        p = np.broadcast_to(np.array([4e4, 7e4, 9.5e4]), (nc, nlev)).copy()
        dpi = np.full((nc, nlev), 1e4)
        ex = exner(p)
        temp = np.array([[250.0, 255.0, 260.0],     # cold column: snow
                         [250.0, 270.0, 285.0]])    # warm surface: rain-ish
        qi = np.full((nc, nlev), 2e-3)
        res = ice_microphysics(temp, np.zeros_like(qi), np.zeros_like(qi), qi,
                               p, dpi, ex, 600.0)
        assert res.snow_rate[0] > 0.0
        # Warm surface: the ice melts to cloud water before it can fall
        # out (Kessler then rains it) — no frozen precipitation.
        assert res.snow_rate[1] == 0.0
        assert res.dqc[1, -1] > 0.0

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=15, deadline=None)
    def test_property_conservation_random(self, seed):
        temp, qv, qc, qi, p, dpi, ex = _cold_columns(seed=seed)
        res = ice_microphysics(temp, qv, qc, qi, p, dpi, ex, 300.0)
        dwater = ((res.dqv + res.dqc + res.dqi) * dpi).sum(axis=1) / GRAVITY
        np.testing.assert_allclose(dwater, -res.precip_rate, rtol=1e-6, atol=1e-13)
        assert np.all(res.precip_rate >= 0.0)
        assert np.all(res.snow_rate <= res.precip_rate + 1e-15)


class TestMountainFlow:
    @pytest.fixture(scope="class")
    def mesh(self):
        return build_mesh(3)

    @pytest.fixture(scope="class")
    def vc(self):
        return VerticalCoordinate.stretched(8)

    def test_terrain_reduces_column_mass(self, mesh, vc):
        st = mountain_flow_state(mesh, vc, h0=1500.0)
        top = int(np.argmax(st.phi_surface))
        assert st.ps[top] < st.ps.min() + 0.3 * (st.ps.max() - st.ps.min())
        assert st.phi_surface.max() / GRAVITY > 1000.0

    def test_runs_stably_with_exact_mass(self, mesh, vc):
        st = mountain_flow_state(mesh, vc)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        m0 = st.total_dry_mass()
        st2 = core.run(st, 32)
        assert np.isfinite(st2.ps).all()
        assert st2.total_dry_mass() == pytest.approx(m0, rel=1e-13)
        assert np.abs(st2.u).max() < 60.0

    def test_flow_responds_near_mountain(self, mesh, vc):
        st = mountain_flow_state(mesh, vc)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        st2 = core.run(st.copy(), 32)
        du = np.abs(st2.u - st.u).max(axis=1)
        lat0, lon0 = np.deg2rad(40.0), 0.0
        lon_e = np.arctan2(mesh.edge_xyz[:, 1], mesh.edge_xyz[:, 0])
        d = np.arccos(np.clip(
            np.sin(mesh.edge_lat) * np.sin(lat0)
            + np.cos(mesh.edge_lat) * np.cos(lat0) * np.cos(lon_e - lon0),
            -1, 1))
        near = d < 0.3
        far = d > 1.5
        assert du[near].mean() > 1.5 * du[far].mean()

    def test_flat_mountain_matches_solid_body(self, mesh, vc):
        """h0 = 0 degenerates to the balanced zonal flow (no spurious
        orographic forcing from the terrain machinery itself)."""
        st = mountain_flow_state(mesh, vc, h0=0.0)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        wind0 = np.abs(st.u).max()
        st2 = core.run(st, 24)
        assert abs(np.abs(st2.u).max() - wind0) / wind0 < 0.05


class TestFusionConstants:
    def test_latent_heats_consistent(self):
        from repro.constants import LATENT_HEAT_VAP

        assert LATENT_HEAT_SUB == pytest.approx(LATENT_HEAT_VAP + LATENT_HEAT_FUSION)
        assert T_FREEZE == 273.15
