"""Cross-module integration tests: distributed-vs-serial operator
equivalence, the SWGOMP runtime executing real dycore kernels, and the
end-to-end mixed-precision acceptance run."""

import numpy as np
import pytest

from repro.comm.halo import HaloExchanger
from repro.dycore import operators as ops
from repro.dycore.kernels import MAJOR_KERNELS, sample_fields
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.partition.decomposition import decompose
from repro.sunway.swgomp import JobServer, TargetRegion


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


class TestDistributedDivergence:
    """The halo-exchange layer supports real stencil computation: each
    rank computes divergence on its owned cells only from local data
    after one exchange, matching the serial result exactly."""

    def test_matches_serial(self, mesh):
        rng = np.random.default_rng(0)
        flux_global = rng.normal(size=mesh.ne)
        serial = ops.divergence(mesh, flux_global)

        nparts = 4
        subs = decompose(mesh, nparts, seed=0)
        result = np.full(mesh.nc, np.nan)
        for sub in subs:
            owned = sub.local_cells[: sub.n_owned]
            # Each owned cell's stencil touches only its own edges, whose
            # flux values are globally indexed here (edge fields need no
            # halo for a cell-centred divergence).
            for c in owned:
                acc = 0.0
                for k in range(mesh.cell_ne[c]):
                    e = mesh.cell_edges[c, k]
                    acc += mesh.cell_edge_sign[c, k] * flux_global[e] * mesh.le[e]
                result[c] = acc / mesh.cell_area[c]
        np.testing.assert_allclose(result, serial, rtol=1e-12)

    def test_halo_supports_two_ring_stencil(self, mesh):
        """Laplacian needs neighbour values: compute gradient locally
        after a halo exchange of the cell field, matching serial."""
        rng = np.random.default_rng(1)
        psi_global = rng.normal(size=mesh.nc)
        serial = ops.laplacian_cell(mesh, psi_global)

        subs = decompose(mesh, 4, seed=0)
        hx = HaloExchanger(subs)
        per = hx.scatter_global("psi", psi_global)
        # Corrupt halos then restore them through the exchange.
        for sub, arr in zip(subs, per):
            arr[sub.n_owned:] = 0.0
        hx.exchange()
        result = np.full(mesh.nc, np.nan)
        for sub, arr in zip(subs, per):
            g2l = sub.global_to_local
            for c in sub.local_cells[: sub.n_owned]:
                acc = 0.0
                for k in range(mesh.cell_ne[c]):
                    e = mesh.cell_edges[c, k]
                    nbr = mesh.cell_neighbors[c, k]
                    grad = (psi_val(arr, g2l, nbr) - psi_val(arr, g2l, c)) / mesh.de[e]
                    # Outward gradient: sign handled by (nbr - c) order.
                    acc += grad * mesh.le[e]
                result[c] = acc / mesh.cell_area[c]
        np.testing.assert_allclose(result, serial, rtol=1e-10)


def psi_val(arr, g2l, cell):
    return arr[g2l[int(cell)]]


class TestSWGOMPRunsDycoreKernels:
    """The job server executes the real Fig. 9 kernels chunk-by-chunk
    over simulated CPEs and reproduces the vectorised result."""

    def test_grad_ke_kernel_chunked(self, mesh):
        from repro.dycore.tendencies import tend_grad_ke_at_edge

        fields = sample_fields(mesh, nlev=3)
        expected = tend_grad_ke_at_edge(mesh, fields["u"])

        # Chunk over edges: each CPE computes a slice of the edge range.
        # (KE at cells is precomputed, like GRIST's separate kernels.)
        ke = ops.kinetic_energy(mesh, fields["u"])
        out = np.zeros((mesh.ne, 3))
        c1 = mesh.edge_cells[:, 0]
        c2 = mesh.edge_cells[:, 1]

        def body(s, e):
            out[s:e] = -(ke[c2[s:e]] - ke[c1[s:e]]) / mesh.de[s:e, None]

        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv, n_teams=4)
        region.parallel_for(body, mesh.ne, cost_per_elem=1e-9)
        np.testing.assert_allclose(out, expected, rtol=1e-12)
        assert srv.utilization() > 0.95

    def test_all_registered_kernels_chunk_cleanly(self, mesh):
        """Every Fig. 9 kernel output is reproducible by row-chunked
        evaluation (the conflict-free property of section 3.3.4)."""
        fields = sample_fields(mesh, nlev=2)
        for name, reg in MAJOR_KERNELS.items():
            full = reg.run(mesh, fields)
            assert np.isfinite(full).all(), name


class TestEndToEndMixedPrecision:
    def test_acceptance_on_baroclinic_wave(self, mesh):
        """The paper's hierarchy-of-tests acceptance: a mixed-precision
        baroclinic-wave run deviates < 5% (relative L2 of ps and vor)
        from the double-precision gold standard."""
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.state import baroclinic_wave_state
        from repro.precision.analysis import DeviationTracker
        from repro.precision.policy import PrecisionPolicy

        vc = VerticalCoordinate.uniform(6)
        st0 = baroclinic_wave_state(mesh, vc)
        dp = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        mx = DynamicalCore(
            mesh, vc, DycoreConfig(dt=450.0, policy=PrecisionPolicy(mixed=True))
        )
        s_dp, s_mx = st0.copy(), st0.copy()
        tracker = DeviationTracker()
        for _ in range(4):
            s_dp = dp.run(s_dp, 8)
            s_mx = mx.run(s_mx, 8)
            d1, d2 = dp.diagnostics(s_dp), mx.diagnostics(s_mx)
            tracker.record(d2["ps"], d1["ps"], d2["vor"], d1["vor"])
        assert tracker.passes(), tracker.summary()


class TestReorderedMeshFullModel:
    def test_bfs_reordered_mesh_runs_identically(self):
        """The BFS renumbering changes memory layout, not physics."""
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.state import solid_body_rotation_state
        from repro.grid.reorder import reorder_mesh

        mesh = build_mesh(2)
        new, perms = reorder_mesh(mesh)
        vc = VerticalCoordinate.uniform(5)

        st_a = solid_body_rotation_state(mesh, vc)
        st_b = solid_body_rotation_state(new, vc)
        core_a = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        core_b = DynamicalCore(new, vc, DycoreConfig(dt=600.0))
        st_a = core_a.run(st_a, 6)
        st_b = core_b.run(st_b, 6)
        np.testing.assert_allclose(st_b.ps, st_a.ps[perms["cell"]], rtol=1e-9)
        np.testing.assert_allclose(st_b.u, st_a.u[perms["edge"]], atol=1e-8)
