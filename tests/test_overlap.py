"""Tests of the overlapped interior/boundary execution path.

The contract (documented in ``repro.parallel.overlap``):

* the interior/boundary targets partition each rank's owned cells and
  owned edges exactly;
* the interior pass's closure touches only owned parent entries, which
  is what makes it race-free against a concurrent halo unpack;
* with the reference stencil backend the overlapped driver is bitwise
  equal to the serial oracle; with the fused backend it is within the
  declared per-field tolerance contract;
* the derived step plan and the observed one-step run both analyze
  clean under RD001-RD005, and stripping the tolerance contract makes
  RD005 fire on every split compute op.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.analysis.parallel_plan import OpKind, ParallelPlan
from repro.analysis.race_sanitizer import RaceReplay, sanitize_run
from repro.analysis.races import analyze_parallel_plan, build_step_plan
from repro.dycore.solver import DycoreConfig
from repro.dycore.state import baroclinic_wave_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.parallel.driver import DistributedDycore
from repro.parallel.overlap import (
    STENCIL_RADIUS,
    TOLERANCE_CONTRACT,
    build_overlap_splits,
    contract_for,
    owned_cell_halo_distance,
)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="StealingRankExecutor requires fork"
)


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.uniform(5)


def _driver(mesh, vc, backend=None, nparts=4, workers=2, overlap=True,
            sponge=2):
    cfg = DycoreConfig(
        dt=600.0, sponge_levels=sponge, stencil_backend=backend,
    )
    d = DistributedDycore(
        mesh, vc, cfg, nparts=nparts, workers=workers, overlap=overlap,
    )
    d.scatter(baroclinic_wave_state(mesh, vc))
    return d


class TestSplitInvariants:
    def test_targets_partition_owned_entities(self, mesh, vc):
        d = _driver(mesh, vc, workers=1)
        try:
            for lm, split in zip(d.locals, d.splits):
                passes = [
                    pm for pm in split.pass_meshes().values()
                    if pm is not None
                ]
                cells = np.concatenate([pm.target_cells for pm in passes])
                edges = np.concatenate([pm.target_edges for pm in passes])
                assert np.array_equal(
                    np.sort(cells), np.arange(lm.n_owned_cells)
                )
                assert np.array_equal(
                    np.sort(edges), np.arange(lm.n_owned_edges)
                )
        finally:
            d.close()

    def test_interior_targets_are_distance_gt_radius(self, mesh, vc):
        d = _driver(mesh, vc, workers=1)
        try:
            for lm, split in zip(d.locals, d.splits):
                dist = owned_cell_halo_distance(lm)
                if split.interior is not None:
                    assert np.all(
                        dist[split.interior.target_cells] > STENCIL_RADIUS
                    )
                if split.boundary is not None:
                    assert np.all(
                        dist[split.boundary.target_cells] <= STENCIL_RADIUS
                    )
        finally:
            d.close()

    def test_interior_closure_touches_owned_entries_only(self, mesh, vc):
        """The race-freedom precondition: every parent cell/edge the
        interior pass gathers from (not just its targets) is owned, so
        a concurrent unpack writing halo entries cannot be observed."""
        d = _driver(mesh, vc, workers=1)
        try:
            for lm, split in zip(d.locals, d.splits):
                pm = split.interior
                if pm is None:
                    continue
                assert np.all(pm.cells < lm.n_owned_cells)
                assert np.all(pm.edges < lm.n_owned_edges)
        finally:
            d.close()

    def test_splits_require_no_empty_meshes(self, mesh, vc):
        subs = _driver(mesh, vc, workers=1)
        try:
            splits = build_overlap_splits(subs.locals)
            assert any(s.interior is not None for s in splits)
            assert all(s.boundary is not None for s in splits)
        finally:
            subs.close()


class TestToleranceContract:
    def test_reference_contract_is_bitwise(self):
        assert all(v is None for v in contract_for("reference").values())

    def test_fused_contract_declares_tolerances(self):
        c = contract_for("fused")
        assert all(v is not None and v > 0 for v in c.values())
        assert set(c) == {"ps", "u", "theta"}

    def test_unknown_backend_falls_back_to_fused(self):
        assert contract_for("someday") == TOLERANCE_CONTRACT["fused"]


class TestOverlapEquality:
    def _gather(self, mesh, vc, backend, overlap, workers):
        d = _driver(mesh, vc, backend=backend, overlap=overlap,
                    workers=workers)
        try:
            d.run(2)
            return d.gather()
        finally:
            d.close()

    def test_reference_backend_is_bitwise_vs_serial(self, mesh, vc):
        serial = self._gather(mesh, vc, "reference", False, 1)
        over = self._gather(mesh, vc, "reference", True, 2)
        for a, b in zip(serial, over):
            assert np.array_equal(a, b)

    def test_fused_backend_is_within_contract(self, mesh, vc):
        serial = self._gather(mesh, vc, "fused", False, 1)
        over = self._gather(mesh, vc, "fused", True, 2)
        contract = contract_for("fused")
        for name, a, b in zip(("ps", "u", "theta"), serial, over):
            scale = np.max(np.abs(a)) or 1.0
            assert np.max(np.abs(a - b)) <= contract[name] * scale

    def test_overlap_single_worker_is_bitwise_too(self, mesh, vc):
        """workers=1 still forks (the async round protocol needs a
        worker process); the split itself must not change the bits."""
        serial = self._gather(mesh, vc, "reference", False, 1)
        over = self._gather(mesh, vc, "reference", True, 1)
        for a, b in zip(serial, over):
            assert np.array_equal(a, b)


class TestOverlapStats:
    def test_overlap_stats_accounting(self, mesh, vc):
        d = _driver(mesh, vc)
        try:
            d.run(2)
            ov = d.overlap_stats()
            assert ov["enabled"]
            # 3 RK stages x 2 steps of overlapped windows.
            assert ov["windows"] == 6
            assert 0.0 <= ov["overlap_fraction"] <= 1.0
            assert ov["overlapped_seconds"] <= ov["exchange_seconds_total"]
            assert ov["exposed_wait_seconds"] == pytest.approx(
                ov["exchange_seconds_total"] - ov["overlapped_seconds"]
            )
        finally:
            d.close()

    def test_comm_stats_split_timings(self, mesh, vc):
        d = _driver(mesh, vc)
        try:
            d.run(1)
            cs = d.comm_stats()
            for key in (
                "messages", "bytes", "messages_per_exchange",
                "exchange_seconds_total", "pack_seconds", "unpack_seconds",
                "wire_seconds", "overlapped_seconds",
                "exposed_wait_seconds", "overlap_fraction",
            ):
                assert key in cs
            assert cs["exchange_seconds_total"] >= (
                cs["pack_seconds"] + cs["unpack_seconds"]
            ) - 1e-9
            assert cs["exposed_wait_seconds"] <= cs["exchange_seconds_total"]
        finally:
            d.close()

    def test_lockstep_comm_stats_report_zero_overlap(self, mesh, vc):
        d = _driver(mesh, vc, overlap=False, workers=1)
        try:
            d.run(1)
            cs = d.comm_stats()
            assert cs["overlapped_seconds"] == 0.0
            assert cs["overlap_fraction"] == 0.0
            assert cs["exchange_seconds_total"] > 0.0
        finally:
            d.close()


class TestOverlapRaceAnalysis:
    @pytest.mark.parametrize("backend", ["reference", "fused"])
    def test_static_step_plan_analyzes_clean(self, mesh, vc, backend):
        d = _driver(mesh, vc, backend=backend, workers=1)
        try:
            plan = build_step_plan(d)
            assert not analyze_parallel_plan(plan)
            names = {op.name for op in plan.ops}
            assert "interior.s1.rank0" in names
            assert "boundary.s1.rank0" in names
            assert "join.s1" in names
        finally:
            d.close()

    def test_fused_ops_carry_tolerance_and_strip_fires_rd005(self, mesh, vc):
        d = _driver(mesh, vc, backend="fused", workers=1)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        split_ops = [
            op for op in plan.ops
            if op.kind is OpKind.COMPUTE and op.name.startswith(
                ("interior.", "boundary.")
            )
        ]
        assert split_ops
        assert all(
            op.order_sensitive and op.tolerance is not None
            for op in split_ops
        )
        stripped = ParallelPlan(
            name=plan.name,
            ops=[dataclasses.replace(op, tolerance=None) for op in plan.ops],
            edges=plan.edges, arena=plan.arena, halo_recv=plan.halo_recv,
        )
        diags = analyze_parallel_plan(stripped)
        rd005 = [d_ for d_ in diags if d_.rule == "RD005"]
        assert len(rd005) == len(split_ops)
        events = RaceReplay(stripped).run()
        assert any(ev.rule == "RD005" for ev in events)

    def test_reference_ops_claim_bitwise(self, mesh, vc):
        d = _driver(mesh, vc, backend="reference", workers=1)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        for op in plan.ops:
            if op.name.startswith(("interior.", "boundary.")):
                if op.kind is OpKind.COMPUTE:
                    assert not op.order_sensitive
                    assert op.tolerance is None

    def test_interior_runs_unordered_with_exchange(self, mesh, vc):
        """The whole point: the plan declares NO happens-before between
        the interior ops and the same stage's pack/unpack ops, and the
        analyzer still proves the schedule clean from index sets."""
        from repro.analysis.parallel_plan import HappensBefore

        d = _driver(mesh, vc, workers=1)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        hb = HappensBefore(plan)
        unpacks = [
            op.name for op in plan.ops
            if op.kind is OpKind.UNPACK and op.epoch == 1
        ]
        assert unpacks
        assert any(
            hb.concurrent("interior.s1.rank0", u) for u in unpacks
        )
        # ...while the boundary pass is strictly after every unpack.
        assert all(hb.before(u, "boundary.s1.rank0") for u in unpacks)

    @pytest.mark.parametrize("backend", ["reference", "fused"])
    def test_dynamic_run_sanitizes_clean(self, mesh, vc, backend):
        d = _driver(mesh, vc, backend=backend)
        try:
            report = sanitize_run(d, steps=1)
        finally:
            d.close()
        assert report.clean, report.to_dict()["events"]
        names = {op.name for op in report.plan.ops}
        assert any(n.endswith(".interior.rank0") or ".interior" in n
                   for n in names)
