"""Property-based tests of the compiled ExchangePlan wire format.

Seeded randomised properties in the style of
``test_ldcache_properties.py``: each case draws a random mix of field
dtypes, trailing shapes and registration orders, stales the
exchange-listed entries, and checks the invariants any aggregated
exchange must satisfy:

* **Exact round-trip** — every recv-listed entry is restored bit-exactly
  in its own dtype (no up/downcasts anywhere in the payload path);
* **Byte accounting** — ``bytes_sent`` equals the sum of per-field
  ``itemsize x width x index-count`` over all (rank, neighbour) pairs;
* **Plan reuse** — repeated exchanges never recompile nor reallocate
  the wire buffers.
"""

import numpy as np
import pytest

from repro.comm.message import Communicator
from repro.parallel.exchange import EdgeCellExchanger
from repro.parallel.localmesh import build_local_meshes
from repro.partition.decomposition import decompose
from repro.partition.graph import mesh_cell_graph
from repro.partition.metis import partition_graph

DTYPES = [np.float64, np.float32, np.int64, np.int32]
TRAILINGS = [(), (5,), (2, 3)]


def _locals(mesh, nparts, seed=0):
    part = partition_graph(mesh_cell_graph(mesh), nparts, seed=seed)
    return build_local_meshes(mesh, decompose(mesh, nparts, part=part), part)


def _random_fields(rng, n_fields):
    """Draw (name, kind, dtype, trailing) specs in random order."""
    fields = []
    for i in range(n_fields):
        fields.append((
            f"f{i}",
            "cell" if rng.random() < 0.7 else "edge",
            DTYPES[int(rng.integers(len(DTYPES)))],
            TRAILINGS[int(rng.integers(len(TRAILINGS)))],
        ))
    rng.shuffle(fields)
    return fields


def _build(mesh, locals_, fields, rng):
    """Register random-valued per-rank arrays; returns (ex, arrays, refs)."""
    ex = EdgeCellExchanger(locals_, Communicator(len(locals_)))
    arrays, refs = {}, {}
    for name, kind, dtype, trailing in fields:
        n = mesh.nc if kind == "cell" else mesh.ne
        if np.issubdtype(dtype, np.floating):
            g = rng.normal(size=(n,) + trailing).astype(dtype)
        else:
            g = rng.integers(-1000, 1000, size=(n,) + trailing).astype(dtype)
        per_rank = [
            (lm.scatter_cell_field(g) if kind == "cell"
             else lm.scatter_edge_field(g))
            for lm in locals_
        ]
        (ex.register_cell if kind == "cell" else ex.register_edge)(
            name, per_rank
        )
        arrays[name] = (kind, per_rank)
        refs[name] = [a.copy() for a in per_rank]
    return ex, arrays, refs


def _stale_recv_entries(locals_, arrays, fill=-99):
    """Overwrite every recv-listed entry so the exchange must restore it."""
    for lm in locals_:
        for name, (kind, per_rank) in arrays.items():
            recv = lm.cell_recv if kind == "cell" else lm.edge_recv
            for idx in recv.values():
                per_rank[lm.rank][idx] = fill


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("nparts", [2, 3])
def test_random_field_mix_round_trips_exactly(mesh_g1, seed, nparts):
    rng = np.random.default_rng([seed, nparts])
    locals_ = _locals(mesh_g1, nparts)
    fields = _random_fields(rng, n_fields=int(rng.integers(1, 6)))
    ex, arrays, refs = _build(mesh_g1, locals_, fields, rng)
    _stale_recv_entries(locals_, arrays)
    ex.exchange()
    for name, (kind, per_rank) in arrays.items():
        for got, ref in zip(per_rank, refs[name]):
            assert got.dtype == ref.dtype
            assert np.array_equal(got, ref), name


@pytest.mark.parametrize("seed", range(4))
def test_bytes_sent_equals_per_field_itemsize_sum(mesh_g1, seed):
    rng = np.random.default_rng(seed)
    locals_ = _locals(mesh_g1, 2)
    fields = _random_fields(rng, n_fields=4)
    ex, arrays, _ = _build(mesh_g1, locals_, fields, rng)
    ex.exchange()

    expected = 0
    for lm in locals_:
        for name, (kind, per_rank) in arrays.items():
            arr = per_rank[lm.rank]
            width = int(np.prod(arr.shape[1:], dtype=np.int64)) or 1
            send = lm.cell_send if kind == "cell" else lm.edge_send
            for idx in send.values():
                expected += idx.size * width * arr.dtype.itemsize
    assert ex.comm.stats.bytes_sent == expected
    assert ex.bytes_per_exchange() == expected
    # One aggregated message per (rank, neighbour) pair, regardless of
    # the number of registered fields.
    assert ex.comm.stats.messages == ex.messages_per_exchange()


@pytest.mark.parametrize("seed", range(4))
def test_plan_reuse_never_recompiles_nor_reallocates(mesh_g1, seed):
    rng = np.random.default_rng(seed)
    locals_ = _locals(mesh_g1, 2)
    fields = _random_fields(rng, n_fields=3)
    ex, arrays, _ = _build(mesh_g1, locals_, fields, rng)
    ex.exchange()
    assert ex.plan_compilations == 1
    buffer_ids = {k: id(p.send_buffer) for k, p in ex.plans.items()}
    for _ in range(5):
        ex.exchange()
    assert ex.plan_compilations == 1
    assert {k: id(p.send_buffer) for k, p in ex.plans.items()} == buffer_ids

    # Same-layout replacement keeps the compiled plans valid...
    name, (kind, per_rank) = next(iter(arrays.items()))
    ex.replace(name, [a.copy() for a in per_rank])
    ex.exchange()
    assert ex.plan_compilations == 1
    # ...while a dtype change forces exactly one recompile.
    if per_rank[0].dtype != np.float64:
        ex.replace(name, [a.astype(np.float64) for a in per_rank])
        ex.exchange()
        assert ex.plan_compilations == 2


@pytest.mark.parametrize("seed", range(2))
def test_replace_keeps_race_annotations_and_verdicts_stable(mesh_g1, seed):
    """Race-annotation property: ``replace()`` with a same-layout array
    must recompile nothing, leave ``access_annotations()`` (the index
    sets the RD analyzer reasons over) byte-identical, and therefore
    keep the RD002/RD003 verdicts of a plan built from them unchanged
    mid-run."""
    from repro.analysis.parallel_plan import (
        DRIVER,
        Access,
        OpKind,
        ParallelPlan,
        PlanOp,
    )
    from repro.analysis.race_sanitizer import RaceSanitizer
    from repro.analysis.races import analyze_parallel_plan

    def snapshot(ex):
        out = {}
        for pair, ann in ex.access_annotations().items():
            out[pair] = (
                ann["buffer"],
                {f: tuple(idx) for f, idx in ann["sends"].items()},
                {f: tuple(idx) for f, idx in ann["recvs"].items()},
            )
        return out

    def racy_plan(ex):
        """A halo read racing its unpack plus an in-flight repack, built
        from the exchanger's own annotations."""
        (rank, nbr), ann = sorted(ex.access_annotations().items())[0]
        peer = ex.access_annotations()[(nbr, rank)]
        fname = sorted(ann["recvs"])[0]
        recv_idx = ann["recvs"][fname]
        ops = [
            PlanOp(name="e1.pack", kind=OpKind.PACK, lane=DRIVER, epoch=1,
                   accesses=[Access(peer["buffer"], mode="w")]),
            PlanOp(name="e1.unpack", kind=OpKind.UNPACK, lane=DRIVER,
                   epoch=1,
                   accesses=[Access(peer["buffer"], mode="r"),
                             Access(f"rank{rank}.{fname}", mode="w",
                                    indices=recv_idx)]),
            # Concurrent consumer: no barrier separates it.
            PlanOp(name="tend", kind=OpKind.COMPUTE, lane=rank,
                   accesses=[Access(f"rank{rank}.{fname}", mode="r")]),
            # Next epoch's repack with no drain edge.
            PlanOp(name="e2.pack", kind=OpKind.PACK, lane=0, epoch=2,
                   accesses=[Access(peer["buffer"], mode="w")]),
        ]
        return ParallelPlan(
            name="mid_run", ops=ops, edges=[("e1.pack", "e1.unpack")],
            halo_recv={f"rank{rank}.{fname}": recv_idx},
        )

    def verdicts(ex):
        plan = racy_plan(ex)
        diags = RaceSanitizer().verify(plan, analyze_parallel_plan(plan))
        return sorted((d.rule, d.verdict) for d in diags)

    rng = np.random.default_rng(seed)
    locals_ = _locals(mesh_g1, 2)
    fields = _random_fields(rng, n_fields=3)
    ex, arrays, _ = _build(mesh_g1, locals_, fields, rng)
    ex.exchange()

    before_ann = snapshot(ex)
    before = verdicts(ex)
    rules = {r for r, _ in before}
    assert {"RD002", "RD003"} <= rules
    assert all(v == "CONFIRMED" for _, v in before)

    # Mid-run same-layout replacement: nothing recompiles, the
    # annotations and the verdicts are bitwise stable.
    compilations = ex.plan_compilations
    name, (kind, per_rank) = next(iter(arrays.items()))
    ex.replace(name, [a.copy() for a in per_rank])
    ex.exchange()
    assert ex.plan_compilations == compilations
    assert snapshot(ex) == before_ann
    assert verdicts(ex) == before
