"""Tests of the swlint static pass: access specs, rules SW001-SW007,
the known-bad corpus, and the repo's own annotated kernels."""

import pytest

from repro.analysis.access import (
    AccessSpec,
    ArrayAccess,
    IndexKind,
    OffloadPlan,
    PlannedLoop,
    parse_index,
)
from repro.analysis.corpus import KNOWN_BAD_CORPUS
from repro.analysis.diagnostics import (
    RULES,
    Diagnostic,
    Severity,
    by_rule,
    errors,
    rank,
)
from repro.analysis.static import (
    CacheGeometry,
    StaticAnalyzer,
    analyze_plan,
    plan_from_directives,
)


class TestIndexLanguage:
    def test_local(self):
        e = parse_index("i")
        assert e.kind is IndexKind.LOCAL
        assert e.chunk_local
        assert e.reach == 0

    @pytest.mark.parametrize("expr,offset", [("i+1", 1), ("i-2", -2), ("i + 3", 3)])
    def test_offset(self, expr, offset):
        e = parse_index(expr)
        assert e.kind is IndexKind.OFFSET
        assert e.offset == offset
        assert not e.chunk_local

    def test_indirect_default_ring(self):
        e = parse_index("nbr(i)")
        assert e.kind is IndexKind.INDIRECT
        assert e.ring == 1
        assert e.reach == 1

    def test_indirect_explicit_ring(self):
        e = parse_index("nbr(i, 2)")
        assert e.ring == 2
        assert e.reach == 2

    @pytest.mark.parametrize("expr", ["all", "*", ":"])
    def test_global(self, expr):
        assert parse_index(expr).kind is IndexKind.GLOBAL

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            parse_index("j+1")
        with pytest.raises(ValueError):
            ArrayAccess("x", mode="q", index="i")

    def test_duplicate_array_names_rejected(self):
        with pytest.raises(ValueError, match="more than once"):
            AccessSpec.of(
                ArrayAccess("x", mode="r", index="i"),
                ArrayAccess("x", mode="w", index="i"),
            )


class TestRuleCatalog:
    def test_seven_stable_rule_ids(self):
        assert sorted(r for r in RULES if r.startswith("SW")) == [
            f"SW00{k}" for k in range(1, 8)
        ]

    def test_five_stable_rd_rule_ids(self):
        assert sorted(r for r in RULES if r.startswith("RD")) == [
            f"RD00{k}" for k in range(1, 6)
        ]

    def test_default_severity_from_rule(self):
        assert Diagnostic(rule="SW001", message="m").severity is Severity.ERROR
        assert Diagnostic(rule="SW004", message="m").severity is Severity.WARNING

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic(rule="SW099", message="m")

    def test_rank_orders_errors_first(self):
        ds = [
            Diagnostic(rule="SW004", message="warn"),
            Diagnostic(rule="SW001", message="err"),
        ]
        assert [d.rule for d in rank(ds)] == ["SW001", "SW004"]
        assert [d.rule for d in errors(ds)] == ["SW001"]
        assert set(by_rule(ds)) == {"SW001", "SW004"}


def _single_loop_plan(access, **plan_kwargs):
    return OffloadPlan(
        loops=[PlannedLoop(name="loop", access=access, n_iters=1024)],
        name="t", **plan_kwargs,
    )


class TestRules:
    """Each rule on a minimal plan that isolates it."""

    def test_sw001_indirect_write(self):
        plan = _single_loop_plan(AccessSpec.of(
            ArrayAccess("acc", mode="w", index="nbr(i)"),
        ))
        rules = {d.rule for d in analyze_plan(plan)}
        assert "SW001" in rules

    def test_sw001_not_fired_for_local_write(self):
        plan = _single_loop_plan(AccessSpec.of(
            ArrayAccess("src", mode="r", index="nbr(i)"),
            ArrayAccess("dst", mode="w", index="i"),
        ))
        assert all(d.rule != "SW001" for d in analyze_plan(plan))

    def test_sw002_same_region_only(self):
        spec_w = AccessSpec.of(ArrayAccess("ke", mode="w", index="i"))
        spec_r = AccessSpec.of(
            ArrayAccess("ke", mode="r", index="i"),
            ArrayAccess("out", mode="w", index="i"),
        )
        same = OffloadPlan(name="same", loops=[
            PlannedLoop(name="a", access=spec_w, n_iters=64, nowait=True, region=0),
            PlannedLoop(name="b", access=spec_r, n_iters=64, region=0),
        ])
        split = OffloadPlan(name="split", loops=[
            PlannedLoop(name="a", access=spec_w, n_iters=64, nowait=True, region=0),
            PlannedLoop(name="b", access=spec_r, n_iters=64, region=1),
        ])
        assert any(d.rule == "SW002" for d in analyze_plan(same))
        # The end-target barrier synchronises regions: Fig. 4's own
        # `end do nowait` must not be a false positive.
        assert all(d.rule != "SW002" for d in analyze_plan(split))

    def test_sw003_uninitialised_server(self):
        plan = _single_loop_plan(
            AccessSpec.of(ArrayAccess("x", mode="w", index="i")),
            server_initialized=False,
        )
        assert any(d.rule == "SW003" for d in analyze_plan(plan))

    def test_sw004_needs_aligned_bases(self):
        geo = CacheGeometry()
        names = [f"a{k}" for k in range(6)]
        spec = AccessSpec.of(*(
            [ArrayAccess(n, mode="r", index="i") for n in names[:-1]]
            + [ArrayAccess(names[-1], mode="w", index="i")]
        ))
        aligned = {n: k * geo.way_bytes for k, n in enumerate(names)}
        spread = {n: k * (geo.way_bytes + geo.line_bytes)
                  for k, n in enumerate(names)}
        bad = _single_loop_plan(spec, array_bases=aligned)
        good = _single_loop_plan(spec, array_bases=spread)
        bad_d = [d for d in analyze_plan(bad) if d.rule == "SW004"]
        assert len(bad_d) == 1
        assert bad_d[0].severity is Severity.WARNING
        assert bad_d[0].details["predicted_hit_ratio"] < 0.1
        assert bad_d[0].details["hit_ratio_with_distribution"] > 0.9
        assert all(d.rule != "SW004" for d in analyze_plan(good))

    def test_sw004_unknown_bases_is_info_advisory(self):
        spec = AccessSpec.of(*(
            [ArrayAccess(f"a{k}", mode="r", index="i") for k in range(5)]
            + [ArrayAccess("out", mode="w", index="i")]
        ))
        ds = [d for d in analyze_plan(_single_loop_plan(spec)) if d.rule == "SW004"]
        assert len(ds) == 1
        assert ds[0].severity is Severity.INFO

    def test_sw005_staged_working_set(self):
        spec = AccessSpec.of(
            ArrayAccess("t", mode="r", index="i"),
            ArrayAccess("out", mode="w", index="i"),
        )
        big = OffloadPlan(name="big", n_cpes=64, loops=[PlannedLoop(
            name="l", access=spec, n_iters=64 * 100_000, ldm_staged=True,
        )])
        small = OffloadPlan(name="small", n_cpes=64, loops=[PlannedLoop(
            name="l", access=spec, n_iters=64 * 100, ldm_staged=True,
        )])
        assert any(d.rule == "SW005" for d in analyze_plan(big))
        assert all(d.rule != "SW005" for d in analyze_plan(small))

    def test_sw006_sensitive_term_demoted(self):
        plan = _single_loop_plan(AccessSpec.of(
            ArrayAccess("pgrad", mode="w", index="i", bytes_per_elem=4,
                        term="pressure_gradient"),
        ))
        assert any(d.rule == "SW006" for d in analyze_plan(plan))

    def test_sw006_insensitive_demotion_allowed(self):
        plan = _single_loop_plan(AccessSpec.of(
            ArrayAccess("ke", mode="w", index="i", bytes_per_elem=4,
                        term="kinetic_energy_gradient"),
        ))
        assert all(d.rule != "SW006" for d in analyze_plan(plan))

    def test_sw006_unknown_term_defaults_sensitive(self):
        plan = _single_loop_plan(AccessSpec.of(
            ArrayAccess("mystery", mode="w", index="i", bytes_per_elem=4,
                        term="not_in_the_table"),
        ))
        ds = [d for d in analyze_plan(plan) if d.rule == "SW006"]
        assert len(ds) == 1
        assert ds[0].details["classified"] is False

    def test_sw007_reach_vs_halo(self):
        spec = AccessSpec.of(
            ArrayAccess("theta", mode="r", index="nbr(i,2)"),
            ArrayAccess("out", mode="w", index="i"),
        )
        narrow = _single_loop_plan(spec, halo_width=1)
        wide = _single_loop_plan(spec, halo_width=2)
        assert any(d.rule == "SW007" for d in analyze_plan(narrow))
        assert all(d.rule != "SW007" for d in analyze_plan(wide))


class TestPlanFromDirectives:
    def test_nowait_and_regions_carried_over(self):
        src = (
            "!$omp target\n!$omp parallel\n"
            "!$omp do\ndo ie = 1, ne\nend do\n!$omp end do nowait\n"
            "!$omp do\ndo je = 1, ne\nend do\n!$omp end do\n"
            "!$omp end parallel\n!$omp end target\n"
        )
        spec_w = AccessSpec.of(ArrayAccess("ke", mode="w", index="i"))
        spec_r = AccessSpec.of(
            ArrayAccess("ke", mode="r", index="i"),
            ArrayAccess("out", mode="w", index="i"),
        )
        plan = plan_from_directives(src, {"ie": spec_w, "je": spec_r})
        assert [lp.nowait for lp in plan.loops] == [True, False]
        assert [lp.region for lp in plan.loops] == [0, 0]
        assert any(d.rule == "SW002" for d in analyze_plan(plan))


class TestCorpus:
    @pytest.mark.parametrize("name", sorted(KNOWN_BAD_CORPUS))
    def test_every_case_trips_its_rules(self, name):
        case = KNOWN_BAD_CORPUS[name]
        plan, _ = case.build()
        found = {d.rule for d in analyze_plan(plan)}
        assert case.expect_rules <= found

    def test_three_seeded_paper_cases_have_distinct_rules(self):
        """The ISSUE's three headline plans each flag a different rule."""
        headline = ["fig6_thrash", "racy_flux_accumulation",
                    "demoted_pressure_gradient"]
        rules = {}
        for name in headline:
            plan, _ = KNOWN_BAD_CORPUS[name].build()
            rules[name] = {d.rule for d in analyze_plan(plan)} \
                          & KNOWN_BAD_CORPUS[name].expect_rules
        flat = [r for rs in rules.values() for r in rs]
        assert len(flat) == len(set(flat)) == 3


class TestOwnKernelsClean:
    def test_registered_kernels_zero_errors(self):
        from repro.analysis.report import build_kernel_plan

        diags = analyze_plan(build_kernel_plan())
        assert errors(diags) == []

    def test_every_major_kernel_is_annotated(self):
        from repro.dycore.kernels import MAJOR_KERNELS

        for name, reg in MAJOR_KERNELS.items():
            assert reg.spec.access is not None, name
            assert (reg.spec.access.arrays_per_iteration
                    == reg.spec.arrays_streamed), name

    def test_undistributed_bases_do_thrash(self):
        """Sanity: the clean verdict depends on address distribution."""
        from repro.analysis.report import build_kernel_plan

        diags = analyze_plan(build_kernel_plan(distribute_addresses=False))
        assert any(
            d.rule == "SW004" and d.severity is Severity.WARNING
            for d in diags
        )
