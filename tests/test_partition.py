"""Tests of the graph structures, the multilevel partitioner, and the
domain decomposition with halos."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.mesh import PAD, build_mesh
from repro.partition.decomposition import decompose, decomposition_stats
from repro.partition.graph import CSRGraph, from_edge_list, mesh_cell_graph
from repro.partition.metis import (
    _coarsen,
    _heavy_edge_matching,
    edge_cut,
    partition_balance,
    partition_graph,
)


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def graph(mesh):
    return mesh_cell_graph(mesh)


class TestCSRGraph:
    def test_from_edge_list_roundtrip(self):
        edges = np.array([[0, 1], [1, 2], [2, 0], [2, 3]])
        g = from_edge_list(4, edges)
        g.validate()
        assert g.n == 4
        assert g.num_edges == 4
        assert g.degree(2) == 3
        assert set(g.neighbors(2).tolist()) == {0, 1, 3}

    def test_mesh_graph_valid(self, graph, mesh):
        graph.validate()
        assert graph.n == mesh.nc
        assert graph.num_edges == mesh.ne

    def test_mesh_graph_degrees(self, graph, mesh):
        degs = np.diff(graph.xadj)
        np.testing.assert_array_equal(np.sort(degs), np.sort(mesh.cell_ne))

    def test_validate_catches_asymmetry(self):
        g = CSRGraph(
            xadj=np.array([0, 1, 1]),
            adjncy=np.array([1]),
            vwgt=np.ones(2),
            ewgt=np.ones(1),
        )
        with pytest.raises(ValueError):
            g.validate()


class TestMatchingAndCoarsening:
    def test_matching_is_involution(self, graph):
        rng = np.random.default_rng(0)
        match = _heavy_edge_matching(graph, rng)
        np.testing.assert_array_equal(match[match], np.arange(graph.n))

    def test_matching_respects_adjacency(self, graph):
        rng = np.random.default_rng(1)
        match = _heavy_edge_matching(graph, rng)
        for v in range(graph.n):
            if match[v] != v:
                assert match[v] in graph.neighbors(v)

    def test_coarsen_preserves_weight(self, graph):
        rng = np.random.default_rng(2)
        match = _heavy_edge_matching(graph, rng)
        coarse, cmap = _coarsen(graph, match)
        coarse.validate()
        assert coarse.vwgt.sum() == pytest.approx(graph.vwgt.sum())
        assert cmap.shape == (graph.n,)
        assert coarse.n < graph.n

    def test_coarsen_preserves_cut_structure(self, graph):
        """A partition projected through the coarse map has the same cut."""
        rng = np.random.default_rng(3)
        match = _heavy_edge_matching(graph, rng)
        coarse, cmap = _coarsen(graph, match)
        part_c = np.arange(coarse.n) % 2
        part_f = part_c[cmap]
        # Cut of the projected partition counts only inter-coarse-vertex
        # edges, which the coarse graph aggregates exactly.
        assert edge_cut(coarse, part_c) == pytest.approx(edge_cut(graph, part_f))


class TestPartitioner:
    @pytest.mark.parametrize("nparts", [2, 4, 8, 13])
    def test_partition_complete_and_balanced(self, graph, nparts):
        part = partition_graph(graph, nparts, seed=0)
        assert part.shape == (graph.n,)
        assert set(np.unique(part)) == set(range(nparts))
        assert partition_balance(graph, part, nparts) <= 1.10

    def test_cut_much_better_than_random(self, graph):
        part = partition_graph(graph, 8, seed=0)
        rng = np.random.default_rng(0)
        rand = rng.integers(0, 8, size=graph.n)
        assert edge_cut(graph, part) < 0.25 * edge_cut(graph, rand)

    def test_single_part(self, graph):
        part = partition_graph(graph, 1)
        assert np.all(part == 0)

    def test_reproducible(self, graph):
        p1 = partition_graph(graph, 4, seed=42)
        p2 = partition_graph(graph, 4, seed=42)
        np.testing.assert_array_equal(p1, p2)

    def test_too_many_parts_rejected(self):
        g = from_edge_list(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(ValueError):
            partition_graph(g, 5)

    @given(st.integers(min_value=2, max_value=6))
    @settings(max_examples=5, deadline=None)
    def test_property_cover_and_balance(self, nparts):
        mesh = build_mesh(2)
        g = mesh_cell_graph(mesh)
        part = partition_graph(g, nparts, seed=nparts)
        weights = np.bincount(part, minlength=nparts)
        assert weights.sum() == mesh.nc
        assert np.all(weights > 0)
        assert weights.max() / (mesh.nc / nparts) <= 1.12


class TestDecomposition:
    @pytest.mark.parametrize("nparts", [2, 4, 7])
    def test_owned_cells_partition_the_mesh(self, mesh, nparts):
        subs = decompose(mesh, nparts, seed=0)
        owned = np.concatenate([s.local_cells[: s.n_owned] for s in subs])
        assert np.array_equal(np.sort(owned), np.arange(mesh.nc))

    def test_halo_is_exact_neighbor_ring(self, mesh):
        subs = decompose(mesh, 4, seed=0)
        part = np.empty(mesh.nc, dtype=int)
        for s in subs:
            part[s.local_cells[: s.n_owned]] = s.rank
        for s in subs:
            owned = set(s.local_cells[: s.n_owned].tolist())
            halo = set(s.local_cells[s.n_owned:].tolist())
            # Halo = all remote neighbours of owned cells, no more no less.
            expected = set()
            for c in owned:
                for nb in mesh.cell_neighbors[c]:
                    if nb != PAD and int(nb) not in owned:
                        expected.add(int(nb))
            assert halo == expected

    def test_send_recv_symmetry(self, mesh):
        subs = decompose(mesh, 5, seed=1)
        for s in subs:
            for r, recv_idx in s.recv_cells.items():
                peer = subs[r]
                assert s.rank in peer.send_cells
                assert peer.send_cells[s.rank].size == recv_idx.size
                # Peer sends exactly the global cells this rank expects.
                sent_global = peer.local_cells[peer.send_cells[s.rank]]
                want_global = s.local_cells[recv_idx]
                np.testing.assert_array_equal(sent_global, want_global)

    def test_send_cells_are_owned(self, mesh):
        subs = decompose(mesh, 5, seed=1)
        for s in subs:
            for idx in s.send_cells.values():
                assert np.all(idx < s.n_owned)

    def test_stats(self, mesh):
        subs = decompose(mesh, 8, seed=0)
        stats = decomposition_stats(subs)
        assert stats["nparts"] == 8
        assert stats["imbalance"] < 1.12
        assert stats["mean_halo"] > 0
        # Halo should be ~ perimeter, far less than area.
        assert stats["mean_halo"] < 0.8 * stats["mean_owned"]

    def test_bad_part_rejected(self, mesh):
        with pytest.raises(ValueError):
            decompose(mesh, 2, part=np.zeros(5, dtype=int))
