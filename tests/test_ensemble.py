"""Tests of the ensemble & scenario engine (:mod:`repro.ensemble`).

The headline contract: the member-vectorized batch (block-diagonal
replicated mesh) is **bitwise identical** to the per-member serial loop
— the oracle — for every registered scenario, while compiling exactly
one stencil plan per shared mesh.  Around it: the scenario registry and
its serving-layer integration, seeded perturbation determinism (in- and
cross-process), the statistical contracts of the spread/probability
products, and regression pins of the example scripts against the
registry.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dycore.vertical import VerticalCoordinate
from repro.ensemble import (
    EnsembleRunner,
    build_scenario_model,
    ensemble_mean,
    ensemble_percentiles,
    ensemble_products,
    ensemble_spread,
    exceedance_probability,
    get_scenario,
    perturbation_noise,
    physics_perturbation_factors,
    register_scenario,
    replicate_mesh,
    replicate_surface,
    scenario_names,
    spread_to_signal,
    stack_states,
)
from repro.ensemble.batch import member_state as member_block
from repro.ensemble.scenarios import Scenario
from repro.grid.mesh import PAD
from repro.serve.request import ForecastRequest, state_digest

#: The tiny-but-real run every integration test uses: G3, 6 levels, 13
#: dynamics steps — crosses the tracer (ratio 6) and physics (ratio 12)
#: sub-step boundaries, so the batch/loop comparison exercises dynamics,
#: tracer transport, physics and the surface slab.
LEVEL, NLEV, STEPS = 3, 6, 13


def tiny_runner(name: str, **kw) -> EnsembleRunner:
    kw.setdefault("n_members", 2)
    kw.setdefault("level", LEVEL)
    kw.setdefault("nlev", NLEV)
    kw.setdefault("steps", STEPS)
    return EnsembleRunner(scenario=name, **kw)


# -- scenario registry ------------------------------------------------------

class TestScenarioRegistry:
    def test_catalog_contents(self):
        names = scenario_names()
        assert set(names) >= {
            "tropical", "baroclinic", "doksuri", "typhoon_family",
            "heatwave", "aquaplanet", "seasonal",
        }
        # Legacy serving-layer scenarios stay first: their position is
        # what keeps pre-registry documentation and defaults valid.
        assert names[:2] == ("tropical", "baroclinic")

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            get_scenario("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("tropical"))

    def test_every_scenario_reachable_from_forecast_request(self):
        for name in scenario_names():
            req = ForecastRequest(scenario=name)
            assert req.scenario == name
            assert req.model_key()[-1] == name

    def test_legacy_cache_keys_unchanged(self):
        """The registry must not move a single byte of the pre-registry
        request encoding — these hexes predate it."""
        assert ForecastRequest().cache_key() == (
            "d91d2c2dd778fe3aed1818a5280babd70bc02f59f84ecb2914535e3795454797"
        )
        req = ForecastRequest(level=3, nlev=8, steps=12, seed=42,
                              scheme="MIX-ML", scenario="baroclinic",
                              ensemble_size=2)
        assert req.cache_key() == (
            "d50d4d3ff0439a6973e207b2ce71c7d9a959cf755b16872a9eeec96c952b8ff1"
        )

    def test_climate_scenarios_marked(self):
        assert get_scenario("aquaplanet").kind == "climate"
        assert get_scenario("seasonal").kind == "climate"
        assert get_scenario("seasonal").day_of_year == 15.0

    def test_typhoon_family_members_are_distinct_storms(self, mesh_g2):
        vc = VerticalCoordinate.stretched(4)
        fam = get_scenario("typhoon_family")
        s0 = fam.base_state(mesh_g2, vc, member=0, seed=0)
        s1 = fam.base_state(mesh_g2, vc, member=1, seed=0)
        # Displaced vortices: the *unperturbed* base states already
        # differ (deterministic scenarios share one base state).
        assert not np.array_equal(s0.ps, s1.ps)
        trop = get_scenario("tropical")
        t0 = trop.base_state(mesh_g2, vc, member=0, seed=0)
        t1 = trop.base_state(mesh_g2, vc, member=1, seed=0)
        assert np.array_equal(t0.theta, t1.theta)


# -- perturbation determinism (satellite: property-based generators) -------

class TestPerturbationDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), member=st.integers(0, 255))
    def test_noise_is_a_pure_function_of_seed_and_member(self, seed, member):
        a = perturbation_noise((5, 4), seed, member)
        b = perturbation_noise((5, 4), seed, member)
        assert a.tobytes() == b.tobytes()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           m1=st.integers(0, 63), m2=st.integers(0, 63))
    def test_distinct_members_draw_distinct_noise(self, seed, m1, m2):
        if m1 == m2:
            return
        a = perturbation_noise((5, 4), seed, m1)
        b = perturbation_noise((5, 4), seed, m2)
        assert a.tobytes() != b.tobytes()

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), member=st.integers(0, 63),
           amp=st.floats(1e-4, 0.5))
    def test_sppt_factors_bounded_and_deterministic(self, seed, member, amp):
        f = physics_perturbation_factors(32, seed, member, amp)
        assert f.shape == (32,)
        assert np.all(f >= 1.0 - 2.0 * amp - 1e-12)
        assert np.all(f <= 1.0 + 2.0 * amp + 1e-12)
        g = physics_perturbation_factors(32, seed, member, amp)
        assert f.tobytes() == g.tobytes()

    def test_sppt_stream_independent_of_ic_stream(self):
        """Perturbed-physics members keep the same initial conditions:
        the SPPT draw must not consume the IC stream."""
        ic = perturbation_noise((8,), 3, 2)
        sppt = physics_perturbation_factors(8, 3, 2, 0.2)
        assert ic.tobytes() != ((sppt - 1.0) / 0.2).tobytes()

    def test_member_states_bit_identical_across_processes(self, mesh_g2):
        """A fresh interpreter derives the same member state — no salted
        hashing, no process-dependent RNG state (the cross-process pin
        the ensemble's content-addressing depends on)."""
        vc = VerticalCoordinate.stretched(4)
        want = [
            state_digest(
                get_scenario(name).member_state(mesh_g2, vc, member=1, seed=7)
            )
            for name in ("tropical", "typhoon_family", "heatwave")
        ]
        code = (
            "from repro.dycore.vertical import VerticalCoordinate;"
            "from repro.ensemble import get_scenario;"
            "from repro.grid import build_mesh;"
            "from repro.serve.request import state_digest;"
            "mesh = build_mesh(2); vc = VerticalCoordinate.stretched(4);"
            "[print(state_digest(get_scenario(n).member_state("
            "mesh, vc, member=1, seed=7)))"
            " for n in ('tropical', 'typhoon_family', 'heatwave')]"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.split() == want

    def test_members_pairwise_distinct_per_scenario(self, mesh_g2):
        vc = VerticalCoordinate.stretched(4)
        for name in scenario_names():
            digests = [
                state_digest(
                    get_scenario(name).member_state(mesh_g2, vc, m, seed=0)
                )
                for m in range(3)
            ]
            assert len(set(digests)) == 3, name


# -- product statistical contracts (satellite) ------------------------------

def _random_stack(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    m = int(rng.integers(2, 8))
    nc = int(rng.integers(3, 40))
    scale = 10.0 ** rng.uniform(-6, 3)
    return scale * rng.normal(size=(m, nc))


class TestProductContracts:
    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_mean_within_member_envelope(self, seed):
        stack = _random_stack(seed)
        mean = ensemble_mean(stack)
        assert np.all(mean >= stack.min(axis=0) - 1e-12)
        assert np.all(mean <= stack.max(axis=0) + 1e-12)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_percentiles_monotone_in_q(self, seed):
        stack = _random_stack(seed)
        qs = (5.0, 25.0, 50.0, 75.0, 95.0)
        pcts = ensemble_percentiles(stack, qs)
        assert pcts.shape == (len(qs),) + stack.shape[1:]
        for i in range(len(qs) - 1):
            assert np.all(pcts[i] <= pcts[i + 1] + 1e-12)
        assert np.all(pcts[0] >= stack.min(axis=0) - 1e-12)
        assert np.all(pcts[-1] <= stack.max(axis=0) + 1e-12)

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1),
           thresh=st.floats(-10.0, 10.0))
    def test_exceedance_is_mean_of_indicators(self, seed, thresh):
        stack = _random_stack(seed)
        prob = exceedance_probability(stack, thresh)
        np.testing.assert_array_equal(
            prob, (stack > thresh).astype(float).mean(axis=0)
        )
        assert np.all((prob >= 0.0) & (prob <= 1.0))

    @settings(max_examples=50, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_spread_nonnegative_and_ratio_finite(self, seed):
        stack = _random_stack(seed)
        spread = ensemble_spread(stack)
        assert np.all(spread >= 0.0)
        ratio = spread_to_signal(ensemble_mean(stack), spread)
        assert np.all(np.isfinite(ratio))
        assert np.all(ratio >= 0.0)

    def test_products_contract_on_real_randomized_run(self):
        """One real G3 ensemble under a randomized registered config:
        the derived products must honour every statistical contract."""
        rng = np.random.default_rng(20260808)
        name = str(rng.choice(scenario_names()))
        runner = tiny_runner(
            name,
            n_members=int(rng.integers(2, 4)),
            seed=int(rng.integers(0, 1000)),
            perturbation=float(rng.uniform(0.1, 0.5)),
        )
        res = runner.run()
        for field, stats in res.products.items():
            members = np.stack([
                m.fields["diag.mean_precip" if field == "mean_precip" else "u"]
                for m in res.members
            ])
            if field == "wind":
                members = np.abs(members).max(axis=2)
            assert np.all(stats["mean"] >= members.min(axis=0) - 1e-12)
            assert np.all(stats["mean"] <= members.max(axis=0) + 1e-12)
            assert np.all(stats["p10"] <= stats["p50"] + 1e-12)
            assert np.all(stats["p50"] <= stats["p90"] + 1e-12)
            assert np.all(stats["spread"] >= 0.0)
            assert np.all(np.isfinite(stats["spread_ratio"]))
            exc = stats["exceedance"]
            np.testing.assert_array_equal(
                exc, (members > stats["threshold"]).mean(axis=0)
            )

    def test_ensemble_products_shape(self):
        stacks = {"x": np.arange(12.0).reshape(4, 3)}
        prods = ensemble_products(stacks, thresholds={"x": 5.0})
        stats = prods["x"]
        assert set(stats) >= {"mean", "spread", "spread_ratio",
                              "p10", "p50", "p90",
                              "threshold", "exceedance"}
        assert stats["mean"].shape == (3,)
        assert stats["threshold"] == 5.0


# -- replicated-mesh batching ----------------------------------------------

class TestReplicatedMesh:
    def test_replication_tiles_geometry_and_offsets_topology(self, mesh_g2):
        n = 3
        rmesh = replicate_mesh(mesh_g2, n)
        assert (rmesh.nc, rmesh.ne, rmesh.nv) == (
            n * mesh_g2.nc, n * mesh_g2.ne, n * mesh_g2.nv
        )
        np.testing.assert_array_equal(
            rmesh.cell_area, np.tile(mesh_g2.cell_area, n)
        )
        # Block m's connectivity points only into block m.
        for m in range(n):
            ec = rmesh.edge_cells[m * mesh_g2.ne:(m + 1) * mesh_g2.ne]
            np.testing.assert_array_equal(ec, mesh_g2.edge_cells + m * mesh_g2.nc)
        # PAD entries stay PAD (never offset into a valid index).
        assert np.count_nonzero(rmesh.cell_edges == PAD) == \
            n * np.count_nonzero(mesh_g2.cell_edges == PAD)

    def test_stack_split_roundtrip_is_bitwise(self, mesh_g2):
        vc = VerticalCoordinate.stretched(4)
        scen = get_scenario("tropical")
        states = [scen.member_state(mesh_g2, vc, m, seed=4) for m in range(3)]
        rmesh = replicate_mesh(mesh_g2, 3)
        batched = stack_states(rmesh, states)
        for m, orig in enumerate(states):
            back = member_block(batched, mesh_g2, m)
            assert state_digest(back) == state_digest(orig)

    def test_replicated_surface_tiles_fields(self, mesh_g2):
        surf = get_scenario("doksuri").build_surface(mesh_g2)
        rsurf = replicate_surface(surf, 2)
        np.testing.assert_array_equal(rsurf.sst, np.tile(surf.sst, 2))
        np.testing.assert_array_equal(
            rsurf.land_mask, np.tile(surf.land_mask, 2)
        )


# -- the headline bitwise contract -----------------------------------------

class TestMemberEquivalence:
    @pytest.mark.parametrize("name", [
        "tropical", "baroclinic", "doksuri", "typhoon_family",
        "heatwave", "aquaplanet", "seasonal",
    ])
    def test_batch_bitwise_equals_loop_oracle(self, name):
        """The tentpole acceptance: vectorized batch == per-member
        serial oracle, bitwise, for every registered scenario — with
        exactly one stencil plan compilation per shared mesh."""
        eq = tiny_runner(name).check_equivalence()
        assert eq["bitwise_equal"], name
        loop, batch = eq["loop"], eq["batch"]
        assert loop.member_digests() == batch.member_digests()
        assert len(set(loop.member_digests())) == loop.n_members
        # One shared mesh -> at most one plan compilation per mode (0
        # when an earlier test already compiled this mesh's plan).
        assert loop.plan_compiles <= 1
        assert batch.plan_compiles <= 1

    def test_all_registered_scenarios_covered(self):
        """The parametrization above must never silently lag the
        registry."""
        params = {
            "tropical", "baroclinic", "doksuri", "typhoon_family",
            "heatwave", "aquaplanet", "seasonal",
        }
        assert params == set(scenario_names())

    def test_perturbed_physics_stays_bitwise_and_changes_the_answer(self):
        base = tiny_runner("tropical").run()
        eq = tiny_runner(
            "tropical", physics_perturbation=0.2
        ).check_equivalence()
        assert eq["bitwise_equal"]
        # SPPT actually perturbed the run (it is not a no-op wrapper)...
        assert eq["loop"].digest() != base.digest()
        # ...and left the wrapped model reusable: the runner unwraps on
        # exit, so an unperturbed rerun still matches the baseline.
        assert tiny_runner("tropical").run().digest() == base.digest()

    def test_vectorized_refuses_ml_schemes(self):
        runner = tiny_runner("tropical", scheme="DP-ML")
        with pytest.raises(ValueError, match="vectorized"):
            runner.run(vectorized=True)

    def test_loop_through_serving_pool_matches_standalone(self):
        """An EnsembleRunner handed a warm ModelPool produces the same
        bits as one building its own model."""
        from repro.serve import ModelPool

        pool = ModelPool(max_models=1)
        pooled = tiny_runner("tropical", pool=pool).run()
        standalone = tiny_runner("tropical").run()
        assert pooled.member_digests() == standalone.member_digests()
        assert pool.stats()["built"] == 1

    def test_cross_process_run_digest(self):
        """The whole ensemble run — not just the inputs — is
        reproducible from a fresh interpreter."""
        res = tiny_runner("heatwave", steps=7).run()
        code = (
            "from repro.ensemble import EnsembleRunner;"
            "print(EnsembleRunner(scenario='heatwave', n_members=2,"
            "level=%d, nlev=%d, steps=7).run().digest())" % (LEVEL, NLEV)
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == res.digest()


class TestForkedLoopWorkers:
    """``workers > 1`` shards the loop oracle across forked processes;
    the contract is digest-identity with the serial loop."""

    def test_forked_loop_matches_serial_digests(self):
        serial = tiny_runner("tropical", n_members=3).run()
        forked = tiny_runner("tropical", n_members=3, workers=2).run()
        assert forked.member_digests() == serial.member_digests()
        assert forked.digest() == serial.digest()
        assert len(set(forked.member_digests())) == 3

    def test_workers_clamped_to_member_count(self):
        serial = tiny_runner("heatwave", steps=7).run()
        forked = tiny_runner("heatwave", steps=7, workers=8).run()
        assert forked.member_digests() == serial.member_digests()

    def test_forked_perturbed_physics_matches_serial(self):
        serial = tiny_runner("tropical", physics_perturbation=0.2).run()
        forked = tiny_runner(
            "tropical", physics_perturbation=0.2, workers=2
        ).run()
        assert forked.member_digests() == serial.member_digests()

    def test_workers_reject_shared_pool(self):
        from repro.serve import ModelPool

        with pytest.raises(ValueError, match="pool"):
            tiny_runner("tropical", workers=2, pool=ModelPool(max_models=1))

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            tiny_runner("tropical", workers=0)


# -- example-script regression pins (satellite) -----------------------------

class TestExampleRegressionPins:
    def test_aquaplanet_example_setup_matches_registry(self, mesh_g3):
        """examples/aquaplanet_climate.py's inline construction is the
        registry's ``aquaplanet`` scenario: same surface, same base
        state, and a smoke run through the registry model reproduces the
        plain (unwrapped) example model bitwise."""
        from repro.dycore.state import tropical_profile_state
        from repro.model import GristModel, TABLE3_SCHEMES, scaled_grid_config
        from repro.physics.surface import (
            SurfaceModel, idealized_land_mask, idealized_sst,
        )

        scen = get_scenario("aquaplanet")
        vc = VerticalCoordinate.stretched(8)

        # The example's surface (idealised SST + 4 K) field for field.
        surf = scen.build_surface(mesh_g3)
        np.testing.assert_array_equal(
            surf.sst, idealized_sst(mesh_g3.cell_lat) + 4.0
        )
        np.testing.assert_array_equal(
            surf.land_mask,
            idealized_land_mask(mesh_g3.cell_lat, mesh_g3.cell_lon),
        )
        # The example's base state (297 K, rh 0.85), bitwise.
        base = scen.base_state(mesh_g3, vc)
        example_base = tropical_profile_state(
            mesh_g3, vc, 297.0, rh_surface=0.85
        )
        assert state_digest(base) == state_digest(example_base)

        # Smoke run: the registry model (ResilientPhysics-wrapped, state
        # validation on) is a bitwise passthrough of the example's bare
        # GristModel.
        example_model = GristModel(
            mesh_g3, vc, scaled_grid_config(3, 8), TABLE3_SCHEMES["DP-PHY"],
            surface=SurfaceModel(
                land_mask=idealized_land_mask(
                    mesh_g3.cell_lat, mesh_g3.cell_lon
                ),
                sst=idealized_sst(mesh_g3.cell_lat) + 4.0,
            ),
        )
        registry_model = build_scenario_model(scen, 3, 8, "DP-PHY")
        state_a = scen.member_state(mesh_g3, vc, member=0, seed=0)
        state_b = scen.member_state(mesh_g3, vc, member=0, seed=0)
        out_a = example_model.run(state_a, STEPS)
        out_b = registry_model.run(state_b, STEPS)
        assert state_digest(out_a) == state_digest(out_b)

    def test_doksuri_example_setup_matches_registry(self, mesh_g3):
        """examples/typhoon_doksuri.py (via run_doksuri_case): the
        registry's ``doksuri`` scenario carries the same SST boost,
        storm-permitting dycore overrides and vortex state."""
        from repro.experiments.doksuri import tropical_cyclone_state
        from repro.model import GristModel, scaled_grid_config
        from repro.model.config import SchemeConfig
        from repro.physics.surface import (
            SurfaceModel, idealized_land_mask, idealized_sst,
        )

        scen = get_scenario("doksuri")
        assert scen.sst_boost == 2.0
        assert dict(scen.dycore_kwargs) == {
            "diffusion_coeff": 0.015, "divergence_damping": 0.04,
        }
        vc = VerticalCoordinate.stretched(NLEV)
        np.testing.assert_array_equal(
            scen.build_surface(mesh_g3).sst,
            idealized_sst(mesh_g3.cell_lat) + 2.0,
        )
        assert state_digest(scen.base_state(mesh_g3, vc)) == state_digest(
            tropical_cyclone_state(mesh_g3, vc)
        )

        # Smoke run pin against run_doksuri_case's inline construction.
        example_model = GristModel(
            mesh_g3, vc, scaled_grid_config(3, NLEV),
            SchemeConfig("DP-PHY", False, False),
            surface=SurfaceModel(
                land_mask=idealized_land_mask(
                    mesh_g3.cell_lat, mesh_g3.cell_lon
                ),
                sst=idealized_sst(mesh_g3.cell_lat) + 2.0,
            ),
            dycore_kwargs=dict(diffusion_coeff=0.015, divergence_damping=0.04),
        )
        registry_model = build_scenario_model(scen, 3, NLEV, "DP-PHY")
        out_a = example_model.run(tropical_cyclone_state(mesh_g3, vc), STEPS)
        out_b = registry_model.run(
            scen.base_state(mesh_g3, VerticalCoordinate.stretched(NLEV)),
            STEPS,
        )
        assert state_digest(out_a) == state_digest(out_b)


# -- serving-layer integration ---------------------------------------------

class TestServingIntegration:
    def test_runner_request_roundtrip(self):
        runner = tiny_runner("heatwave", n_members=3, seed=9)
        req = runner.request()
        assert req.scenario == "heatwave"
        assert req.ensemble_size == 3
        assert req.seed == 9
        assert req.model_key() == (LEVEL, NLEV, "DP-PHY", "heatwave")

    def test_scheduler_serves_new_scenarios(self):
        """A registered scenario is a first-class serving citizen: the
        scheduler runs it and its members match the ensemble loop."""
        from repro.serve import ForecastScheduler

        req = ForecastRequest(level=LEVEL, nlev=NLEV, steps=STEPS,
                              scenario="typhoon_family", ensemble_size=2)
        with ForecastScheduler(max_workers=1) as sched:
            res = sched.submit(req).result()
        assert res.ok
        loop = tiny_runner("typhoon_family").run()
        assert tuple(m.digest for m in res.members) == loop.member_digests()


class TestScenarioValidation:
    def test_scenario_dataclass_frozen(self):
        with pytest.raises(AttributeError):
            get_scenario("tropical").sst_boost = 1.0

    def test_custom_registration_roundtrip(self):
        """Registering a new scenario makes it servable end to end
        (cleaned up afterwards to keep the registry canonical)."""
        from repro.ensemble import scenarios as mod

        scen = Scenario(
            name="_test_only",
            description="test fixture",
            kind="weather",
            builder=mod._tropical_state,
            default_steps=4,
        )
        register_scenario(scen)
        try:
            assert "_test_only" in scenario_names()
            req = ForecastRequest(scenario="_test_only")
            assert req.model_key()[-1] == "_test_only"
        finally:
            del mod._REGISTRY["_test_only"]


# -- CLI -------------------------------------------------------------------

class TestEnsembleCLI:
    def test_list(self, capsys):
        from repro.cli import main

        assert main(["ensemble", "--list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_run_json_with_oracle_check(self, capsys):
        import json

        from repro.cli import main

        rc = main([
            "ensemble", "--scenario", "tropical", "--members", "2",
            "--level", str(LEVEL), "--nlev", str(NLEV),
            "--steps", str(STEPS), "--check-oracle", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bitwise_equal_to_oracle"] is True
        assert payload["mode"] == "batch"
        assert payload["members"] == 2
        assert payload["plan_compiles"] <= 1
        assert len(payload["max_wind"]) == 2
        assert np.isfinite(payload["precip_mean_mm_day"])
