"""Unit tests of the fault-injection & recovery layer.

One class per rung of the recovery ladder, plus the injector's
determinism contract: identical (plan, seed, call sequence) must inject
identical fault sequences, and an installed-but-empty plan must leave
every instrumented path untouched.
"""

from dataclasses import dataclass

import numpy as np
import pytest

from repro.comm.message import Communicator
from repro.obs import MetricsRegistry, collecting
from repro.resilience.faults import (
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    get_injector,
    injecting,
)
from repro.resilience.recovery import (
    CheckpointStore,
    ResilientPhysics,
    RetryExhausted,
    RetryPolicy,
    StepFailure,
    corrupt_buffer,
    payload_crc,
)

pytestmark = pytest.mark.chaos


# -- injector ------------------------------------------------------------


def _fire_sequence(plan, seed, n=200):
    inj = FaultInjector(plan, seed=seed)
    out = []
    for i in range(n):
        for kind in FaultKind:
            ev = inj.fire(kind, site=f"s{i % 3}")
            if ev is not None:
                out.append(ev.key() + (ev.payload_seed,))
    return inj, out


def test_injector_deterministic_across_reruns():
    plan = FaultPlan(
        "p",
        (
            FaultSpec(FaultKind.MSG_DROP, rate=0.05),
            FaultSpec(FaultKind.STRAGGLER, at=(3, 7), rate=0.01),
            FaultSpec(FaultKind.DMA_ERROR, at=(0,), max_events=1),
        ),
    )
    _, a = _fire_sequence(plan, seed=42)
    _, b = _fire_sequence(plan, seed=42)
    assert a == b and len(a) > 0
    _, c = _fire_sequence(plan, seed=43)
    assert a != c


def test_schedule_specs_fire_exactly_at_occurrences():
    plan = FaultPlan("p", (FaultSpec(FaultKind.CPE_FAIL, at=(2, 5)),))
    inj = FaultInjector(plan, seed=0)
    fired = [
        i for i in range(10) if inj.fire(FaultKind.CPE_FAIL, site="k") is not None
    ]
    assert fired == [2, 5]


def test_max_events_caps_fired_count():
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DROP, rate=1.0, max_events=3),))
    inj = FaultInjector(plan, seed=0)
    fired = sum(inj.fire(FaultKind.MSG_DROP) is not None for _ in range(10))
    assert fired == 3


def test_unspecified_kind_never_fires_and_empty_plan_inactive():
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DROP, rate=1.0),))
    inj = FaultInjector(plan, seed=0)
    assert inj.fire(FaultKind.DMA_ERROR) is None
    assert not FaultInjector(FaultPlan.named("none")).active
    assert get_injector() is None  # default: no global injector


def test_recover_and_drain_accounting():
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DROP, rate=1.0, max_events=3),))
    inj = FaultInjector(plan, seed=0)
    for _ in range(3):
        inj.fire(FaultKind.MSG_DROP, site="0->1")
    assert len(inj.unrecovered()) == 3
    ev = inj.recover(FaultKind.MSG_DROP, "retransmit", site="0->1")
    assert ev is not None and len(inj.unrecovered()) == 2
    n = inj.drain((FaultKind.MSG_DROP,), "retransmit", site="0->1")
    assert n == 2
    s = inj.summary()
    assert s["n_fired"] == 3 and s["n_recovered"] == 3 and s["n_unrecovered"] == 0
    # Recovering with nothing pending is a harmless no-op.
    assert inj.recover(FaultKind.MSG_DROP, "retransmit") is None


def test_injecting_context_restores_previous():
    with injecting(FaultPlan.named("smoke"), seed=1) as inj:
        assert get_injector() is inj
    assert get_injector() is None


# -- CRC / corruption helpers -------------------------------------------


def test_corrupt_buffer_deterministic_and_crc_detects(rng):
    buf = rng.normal(size=64)
    a, b = buf.copy(), buf.copy()
    corrupt_buffer(a, payload_seed=7, n_bytes=4)
    corrupt_buffer(b, payload_seed=7, n_bytes=4)
    assert np.array_equal(a, b)
    assert not np.array_equal(a, buf)
    assert payload_crc(a) != payload_crc(buf)
    c = buf.copy()
    corrupt_buffer(c, payload_seed=8, n_bytes=4)
    assert not np.array_equal(a, c)


def test_retry_policy_backoff_grows():
    p = RetryPolicy(max_attempts=5, backoff_seconds=1e-4, backoff_factor=2.0)
    assert p.backoff(1) == 1e-4
    assert p.backoff(3) == 4e-4


# -- communicator faults -------------------------------------------------


def test_msg_drop_leaves_mailbox_empty_and_is_probed():
    comm = Communicator(2)
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DROP, at=(0,), max_events=1),))
    with injecting(plan, seed=0) as inj:
        comm.send(0, 1, np.arange(8.0))
        assert not comm.probe(0, 1)
        assert comm.stats.messages == 1          # bytes left the NIC
        comm.send(0, 1, np.arange(8.0))          # second send delivered
        assert comm.probe(0, 1)
        assert len(inj.unrecovered()) == 1       # drop awaits retransmit credit


def test_msg_corrupt_delivers_copy_and_preserves_sender_buffer():
    comm = Communicator(2)
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_CORRUPT, at=(0,)),))
    sent = np.arange(32.0)
    keep = sent.copy()
    with injecting(plan, seed=0):
        comm.send(0, 1, sent, copy=False)
        got = comm.recv(0, 1)
    assert np.array_equal(sent, keep)            # zero-copy source intact
    assert not np.array_equal(got, sent)


def test_msg_delay_is_delivered_and_auto_recovered():
    comm = Communicator(2)
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DELAY, at=(0,)),))
    with injecting(plan, seed=0) as inj:
        comm.send(0, 1, np.arange(4.0))
        got = comm.recv(0, 1)
    assert np.array_equal(got, np.arange(4.0))
    assert inj.summary()["recovered_by_action"] == {"delay_tolerated": 1}


# -- exchanger retransmit ladder ----------------------------------------


def _two_rank_exchanger(mesh):
    from repro.parallel.exchange import EdgeCellExchanger
    from repro.parallel.localmesh import build_local_meshes
    from repro.partition.decomposition import decompose
    from repro.partition.graph import mesh_cell_graph
    from repro.partition.metis import partition_graph

    part = partition_graph(mesh_cell_graph(mesh), 2, seed=0)
    locals_ = build_local_meshes(mesh, decompose(mesh, 2, part=part), part)
    rng = np.random.default_rng(5)
    ps_global = rng.normal(size=mesh.nc)
    ps = [lm.scatter_cell_field(ps_global) for lm in locals_]
    ex = EdgeCellExchanger(locals_, Communicator(2))
    ex.register_cell("ps", ps)
    return ex, ps, [lm.scatter_cell_field(ps_global) for lm in locals_]


def test_exchange_recovers_dropped_and_corrupted_payloads(mesh_g1):
    ex, ps, expect = _two_rank_exchanger(mesh_g1)
    plan = FaultPlan(
        "p",
        (
            FaultSpec(FaultKind.MSG_DROP, at=(0,), max_events=1),
            FaultSpec(FaultKind.MSG_CORRUPT, at=(1,), max_events=1),
        ),
    )
    with injecting(plan, seed=0) as inj:
        ex.exchange()
        assert inj.summary()["n_unrecovered"] == 0
    assert ex.retransmits >= 1
    for got, ref in zip(ps, expect):
        assert np.array_equal(got, ref)


def test_exchange_exhausts_retries_when_every_send_drops(mesh_g1):
    ex, _, _ = _two_rank_exchanger(mesh_g1)
    plan = FaultPlan("p", (FaultSpec(FaultKind.MSG_DROP, rate=1.0),))
    with injecting(plan, seed=0):
        with pytest.raises(RetryExhausted):
            ex.exchange()


# -- job server / DMA faults --------------------------------------------


def test_cpe_fail_and_straggler_charge_time_not_results():
    from repro.sunway.swgomp import JobServer, TargetRegion

    def run(plan):
        server = JobServer()
        server.init_from_mpe()
        region = TargetRegion(server, n_teams=1)
        out = np.zeros(64)

        def body(s, e):
            out[s:e] += 1.0

        ctx = injecting(plan, seed=0) if plan is not None else None
        inj = ctx.__enter__() if ctx else None
        try:
            t = region.parallel_for(body, 64, cost_per_elem=1e-6, name="k")
        finally:
            if ctx:
                ctx.__exit__(None, None, None)
        return t, out, inj

    t_clean, out_clean, _ = run(None)
    plan = FaultPlan(
        "p",
        (
            FaultSpec(FaultKind.CPE_FAIL, at=(0,), max_events=1),
            FaultSpec(FaultKind.STRAGGLER, at=(1,), max_events=1,
                      straggler_factor=4.0),
        ),
    )
    t_fault, out_fault, inj = run(plan)
    assert np.array_equal(out_clean, out_fault)      # results bit-identical
    assert t_fault > t_clean                         # only the clock moved
    assert inj.summary()["n_unrecovered"] == 0


def test_dma_error_retries_and_charges_extra_time():
    from repro.sunway.dma import MemorySpace, omnicopy

    src = np.arange(128.0)
    dst = np.empty_like(src)
    clean = omnicopy(dst, src, dst_space=MemorySpace.LDM)
    plan = FaultPlan("p", (FaultSpec(FaultKind.DMA_ERROR, at=(0,), max_events=1),))
    dst2 = np.empty_like(src)
    with injecting(plan, seed=0) as inj:
        faulted = omnicopy(dst2, src, dst_space=MemorySpace.LDM)
    assert np.array_equal(dst2, src)
    assert faulted.seconds > clean.seconds
    assert inj.summary()["recovered_by_action"] == {"dma_retry": 1}


# -- physics degradation -------------------------------------------------


@dataclass
class _Tend:
    dtheta: np.ndarray
    dqv: np.ndarray
    gsw: np.ndarray
    glw: np.ndarray


class _NaNPhysics:
    """Primary suite that always returns a poisoned tendency."""

    def __init__(self, shape):
        z = np.zeros(shape)
        self.tend = _Tend(np.full(shape, np.nan), z, z[:, 0], z[:, 0])

    def compute(self, state, wind):
        return self.tend


class _GoodPhysics:
    def __init__(self, shape):
        z = np.zeros(shape)
        self.tend = _Tend(z, z, z[:, 0], z[:, 0])
        self.calls = 0

    def compute(self, state, wind):
        self.calls += 1
        return self.tend


class _Fields:
    wind_speed_sfc = None


def test_resilient_physics_falls_back_on_nonfinite():
    shape = (8, 4)
    good = _GoodPhysics(shape)
    rp = ResilientPhysics(primary=_NaNPhysics(shape), fallback=good)
    with collecting(MetricsRegistry(enabled=True)) as metrics:
        tend = rp.compute_from_coupler(None, _Fields())
    assert np.isfinite(tend.dtheta).all()
    assert rp.fallbacks == 1 and good.calls == 1
    assert metrics.counters["recovery.physics_fallback"].value == 1


def test_resilient_physics_without_fallback_raises():
    rp = ResilientPhysics(primary=_NaNPhysics((4, 3)), fallback=None)
    with pytest.raises(StepFailure):
        rp.compute_from_coupler(None, _Fields())


def test_resilient_physics_spread_trigger():
    shape = (8, 4)
    primary = _GoodPhysics(shape)
    primary.tendency_net = type("N", (), {"last_max_spread_ratio": 99.0})()
    fallback = _GoodPhysics(shape)
    rp = ResilientPhysics(primary=primary, fallback=fallback, spread_threshold=10.0)
    rp.compute_from_coupler(None, _Fields())
    assert rp.fallbacks == 1 and fallback.calls == 1
    primary.tendency_net.last_max_spread_ratio = 1.0
    rp.compute_from_coupler(None, _Fields())
    assert rp.fallbacks == 1                     # healthy: no new fallback


def test_injected_ml_blowup_poisons_then_recovers():
    shape = (32, 4)
    rp = ResilientPhysics(primary=_GoodPhysics(shape), fallback=_GoodPhysics(shape))
    plan = FaultPlan("p", (FaultSpec(FaultKind.ML_BLOWUP, at=(0,), max_events=1),))
    with injecting(plan, seed=0) as inj:
        tend = rp.compute_from_coupler(None, _Fields())
    assert np.isfinite(tend.dtheta).all()
    assert rp.fallbacks == 1
    assert inj.summary()["recovered_by_action"] == {"physics_fallback": 1}


# -- checkpoint store ----------------------------------------------------


def test_checkpoint_store_rolls_and_restores():
    store = CheckpointStore(keep=2)
    for step in range(5):
        store.save(step, {"v": step})
    assert len(store) == 2
    step, payload = store.latest()
    assert step == 4 and payload["v"] == 4
    assert store.saves == 5 and store.restores == 1


def test_checkpoint_store_empty_latest_raises():
    with pytest.raises(StepFailure):
        CheckpointStore().latest()
    with pytest.raises(ValueError):
        CheckpointStore(keep=0)


# -- zero-fault identity -------------------------------------------------


def test_installed_empty_plan_is_bitwise_neutral(mesh_g2, vcoord8s):
    """An installed injector with the empty plan must not perturb a
    coupled run at all — the zero-overhead contract of every hook."""
    from repro.dycore.state import tropical_profile_state
    from repro.model.config import SchemeConfig, scaled_grid_config
    from repro.model.grist import GristModel

    def run(with_injector):
        gc = scaled_grid_config(2, 8)
        model = GristModel(
            mesh_g2, vcoord8s, gc, SchemeConfig("DP-PHY", False, False)
        )
        state = tropical_profile_state(mesh_g2, vcoord8s, rh_surface=0.85)
        rng = np.random.default_rng(3)
        state.theta = state.theta + 0.3 * rng.normal(size=state.theta.shape)
        if with_injector:
            with injecting(FaultPlan.named("none"), seed=0):
                state = model.run(state, gc.physics_ratio + 1)
        else:
            state = model.run(state, gc.physics_ratio + 1)
        return state

    a, b = run(False), run(True)
    for f in ("ps", "u", "theta", "w", "phi"):
        assert np.array_equal(getattr(a, f), getattr(b, f)), f
    for k in a.tracers:
        assert np.array_equal(a.tracers[k], b.tracers[k]), k
