"""Tests of the RD race analyzer: the ParallelPlan model, the
HappensBefore graph, the static RD001-RD005 rules on the known-racy
corpus, and the plan derived from a real DistributedDycore."""

import pytest

from repro.analysis.diagnostics import errors
from repro.analysis.parallel_plan import (
    DRIVER,
    Access,
    HappensBefore,
    OpKind,
    ParallelPlan,
    PlanOp,
    indices_intersect,
)
from repro.analysis.race_corpus import KNOWN_RACY_PLANS
from repro.analysis.races import (
    analyze_parallel_plan,
    build_step_plan,
    classify_conflict,
)
from repro.dycore.solver import DycoreConfig
from repro.dycore.state import baroclinic_wave_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.parallel.driver import DistributedDycore


class TestAccessModel:
    def test_indices_normalised_sorted_unique(self):
        a = Access("x", mode="w", indices=[3, 1, 3, 2])
        assert a.indices == (1, 2, 3)

    def test_observed_wins_at_runtime(self):
        a = Access("x", mode="w", indices=None, observed=(0, 1))
        assert a.indices is None
        assert a.runtime_indices() == (0, 1)

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            Access("x", mode="x")

    @pytest.mark.parametrize("a,b,expect", [
        (None, (1, 2), True),       # None = whole resource
        ((1, 2), (2, 3), True),
        ((1, 2), (3, 4), False),
        ((), (1,), False),          # empty never intersects
    ])
    def test_indices_intersect(self, a, b, expect):
        assert indices_intersect(a, b) is expect


class TestPlanModel:
    def test_duplicate_op_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParallelPlan(name="p", ops=[
                PlanOp(name="a", kind=OpKind.COMPUTE),
                PlanOp(name="a", kind=OpKind.COMPUTE),
            ])

    def test_backward_edge_rejected(self):
        plan = ParallelPlan(name="p", ops=[
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=0),
            PlanOp(name="b", kind=OpKind.COMPUTE, lane=1),
        ], edges=[("b", "a")])
        with pytest.raises(ValueError, match="backwards"):
            HappensBefore(plan)

    def test_aliased_resources_overlap_only(self):
        plan = ParallelPlan(name="p", arena={
            "a": (0, 512),
            "b": (256, 512),    # overlaps a
            "c": (1024, 256),   # disjoint
        })
        assert plan.aliased_resources() == [("a", "b")]

    def test_lanes_sorted(self):
        plan = ParallelPlan(name="p", ops=[
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=1),
            PlanOp(name="b", kind=OpKind.APPLY, lane=DRIVER),
        ])
        assert plan.lanes == [DRIVER, 1]


class TestHappensBefore:
    def _plan(self, *ops, edges=()):
        return ParallelPlan(name="p", ops=list(ops), edges=list(edges))

    def test_program_order_within_lane(self):
        hb = HappensBefore(self._plan(
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=0),
            PlanOp(name="b", kind=OpKind.COMPUTE, lane=0),
        ))
        assert hb.before("a", "b")
        assert not hb.before("b", "a")

    def test_cross_lane_unordered_without_sync(self):
        hb = HappensBefore(self._plan(
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=0),
            PlanOp(name="b", kind=OpKind.COMPUTE, lane=1),
        ))
        assert hb.concurrent("a", "b")

    def test_barrier_orders_every_lane(self):
        hb = HappensBefore(self._plan(
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=0),
            PlanOp(name="bar", kind=OpKind.BARRIER),
            PlanOp(name="b", kind=OpKind.COMPUTE, lane=1),
        ))
        assert hb.before("a", "b")

    def test_explicit_edge_is_sync(self):
        hb = HappensBefore(self._plan(
            PlanOp(name="pack", kind=OpKind.PACK, lane=DRIVER),
            PlanOp(name="unpack", kind=OpKind.UNPACK, lane=1),
            edges=[("pack", "unpack")],
        ))
        assert hb.before("pack", "unpack")

    def test_transitivity_through_edge_chain(self):
        hb = HappensBefore(self._plan(
            PlanOp(name="a", kind=OpKind.COMPUTE, lane=0),
            PlanOp(name="b", kind=OpKind.COMPUTE, lane=1),
            PlanOp(name="c", kind=OpKind.COMPUTE, lane=2),
            edges=[("a", "b"), ("b", "c")],
        ))
        assert hb.before("a", "c")
        assert hb.ordered("a", "c") and not hb.concurrent("a", "c")


class TestClassifyConflict:
    def _op(self, kind, name="op"):
        return PlanOp(name=name, kind=kind)

    def test_write_write_is_rd001(self):
        w = self._op(OpKind.COMPUTE, "w")
        o = self._op(OpKind.COMPUTE, "o")
        assert classify_conflict(w, o, other_writes=True) == "RD001"

    def test_pack_vs_unpack_reader_is_rd003(self):
        assert classify_conflict(
            self._op(OpKind.PACK, "p"), self._op(OpKind.UNPACK, "u"), False
        ) == "RD003"

    def test_unpack_writer_vs_reader_is_rd002(self):
        assert classify_conflict(
            self._op(OpKind.UNPACK, "u"), self._op(OpKind.COMPUTE, "c"), False
        ) == "RD002"

    def test_other_dependent_phases_are_rd004(self):
        assert classify_conflict(
            self._op(OpKind.COMPUTE, "c"), self._op(OpKind.APPLY, "a"), False
        ) == "RD004"


class TestRaceCorpus:
    @pytest.mark.parametrize("name", sorted(KNOWN_RACY_PLANS))
    def test_every_case_trips_its_rules_statically(self, name):
        case = KNOWN_RACY_PLANS[name]
        found = {d.rule for d in analyze_parallel_plan(case.build())}
        assert case.expect_rules <= found, (name, found)

    def test_all_five_rd_rules_covered(self):
        covered = set()
        for case in KNOWN_RACY_PLANS.values():
            covered |= case.expect_rules
        assert covered == {f"RD00{k}" for k in range(1, 6)}

    def test_aliasing_diag_carries_extents(self):
        plan = KNOWN_RACY_PLANS["aliased_tendency_slots"].build()
        diags = [d for d in analyze_parallel_plan(plan) if d.rule == "RD001"]
        assert diags
        assert any("extents" in d.details for d in diags)

    def test_tolerance_contract_silences_rd005(self):
        racy = KNOWN_RACY_PLANS["unordered_reduction"].build()
        contracted = ParallelPlan(name="contracted", ops=[
            PlanOp(name=op.name, kind=op.kind, lane=op.lane,
                   accesses=op.accesses, order_sensitive=op.order_sensitive,
                   tolerance=1e-10, values=op.values)
            for op in racy.ops
        ])
        assert any(d.rule == "RD005" for d in analyze_parallel_plan(racy))
        assert not analyze_parallel_plan(contracted)

    def test_barrier_fixes_missing_stage_barrier(self):
        """The RD004 case's own fix — an executor round barrier between
        the evaluation and the apply — silences the analyzer."""
        racy = KNOWN_RACY_PLANS["missing_stage_barrier"].build()
        fixed = ParallelPlan(name="fixed", ops=[
            racy.ops[0],
            PlanOp(name="round.end", kind=OpKind.BARRIER),
            racy.ops[1],
        ])
        assert any(d.rule == "RD004" for d in analyze_parallel_plan(racy))
        assert not analyze_parallel_plan(fixed)


class TestRealStepPlan:
    @pytest.fixture(scope="class")
    def mesh(self):
        return build_mesh(2)

    @pytest.fixture(scope="class")
    def vc(self):
        return VerticalCoordinate.uniform(4)

    def _driver(self, mesh, vc, workers=1, sponge=0, rk=3):
        cfg = DycoreConfig(dt=600.0, sponge_levels=sponge, rk_stages=rk)
        d = DistributedDycore(mesh, vc, cfg, nparts=4, workers=workers)
        d.scatter(baroclinic_wave_state(mesh, vc))
        return d

    def test_requires_scattered_state(self, mesh, vc):
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=1
        )
        with pytest.raises(RuntimeError, match="scatter"):
            build_step_plan(d)

    @pytest.mark.parametrize("workers,sponge,rk", [
        (1, 0, 3), (2, 2, 3), (1, 0, 2), (1, 0, 1),
    ])
    def test_current_lockstep_schedule_is_clean(self, mesh, vc,
                                                workers, sponge, rk):
        """The acceptance gate: the real (race-free) schedule must
        produce zero RD diagnostics in every configuration."""
        d = self._driver(mesh, vc, workers=workers, sponge=sponge, rk=rk)
        try:
            diags = analyze_parallel_plan(build_step_plan(d))
        finally:
            d.close()
        assert errors(diags) == []
        assert diags == []

    def test_plan_structure(self, mesh, vc):
        d = self._driver(mesh, vc, workers=2)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        names = [op.name for op in plan.ops]
        assert names[0] == "save"
        # One exchange + round + apply per stage.
        for s in (1, 2, 3):
            assert f"tend.s{s}.begin" in names
            assert f"tend.s{s}.rank0" in names
            assert f"apply.s{s}" in names
        assert any(n.startswith("e1.pack.") for n in names)
        assert any(n.startswith("e1.unpack.") for n in names)
        # workers>1: the arena layout is attached, recv sets recorded.
        assert plan.arena
        assert plan.halo_recv
        # Every pack->unpack sync edge is declared.
        assert plan.edges
        for a, b in plan.edges:
            assert plan.op(a).kind is OpKind.PACK
            assert plan.op(b).kind is OpKind.UNPACK

    def test_dropped_barrier_is_caught(self, mesh, vc):
        """Mutation coverage: delete the tend round's closing barrier
        from the real plan and the analyzer must object."""
        d = self._driver(mesh, vc)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        mutated = ParallelPlan(
            name="mutated",
            ops=[op for op in plan.ops if op.name != "tend.s1.end"],
            edges=plan.edges,
            arena=plan.arena,
            halo_recv=plan.halo_recv,
        )
        rules = {d_.rule for d_ in analyze_parallel_plan(mutated)}
        assert "RD004" in rules

    def test_dropped_exchange_is_caught(self, mesh, vc):
        """Mutation coverage: omit the stage-1 exchange entirely and the
        stale-halo check fires."""
        d = self._driver(mesh, vc)
        try:
            plan = build_step_plan(d)
        finally:
            d.close()
        mutated = ParallelPlan(
            name="mutated",
            ops=[op for op in plan.ops if not op.name.startswith("e1.")],
            edges=[(a, b) for a, b in plan.edges
                   if not a.startswith("e1.")],
            arena=plan.arena,
            halo_recv=plan.halo_recv,
        )
        rules = {d_.rule for d_ in analyze_parallel_plan(mutated)}
        assert "RD002" in rules
