"""Golden-trace regression test of the instrumented dycore timestep.

A fixed-seed G3 run must emit exactly this ordered span sequence.  The
sequence is the observable contract of the timestep structure (RK3 loop,
hydrostatic vertical solve, sponge, amortised tracer step): a refactor
that reorders, drops or duplicates a stage shows up here as a diff
against the literal below, not as a silent change in some figure.
"""

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import tropical_profile_state
from repro.dycore.vertical import VerticalCoordinate
from repro.model.config import scaled_grid_config
from repro.obs import SpanKind, Tracer, tracing

#: One hydrostatic dynamics step: RK3, vertical solve, sponge.
STEP_SEQUENCE = [
    ("dyn_step", "dycore.step"),
    ("rk_stage", "dycore.rk_stage"),
    ("rk_stage", "dycore.rk_stage"),
    ("rk_stage", "dycore.rk_stage"),
    ("vertical_solve", "dycore.hydrostatic_phi"),
    ("sponge", "dycore.sponge"),
]

#: A full G3 tracer window (tracer_ratio = 6 dynamics steps): six
#: dynamics steps, then the amortised tracer transport step.
GOLDEN_SEQUENCE = STEP_SEQUENCE * 6 + [("tracer_step", "dycore.tracer_step")]


@pytest.fixture(scope="module")
def traced_run(mesh_g3):
    vc = VerticalCoordinate.stretched(8)
    gc = scaled_grid_config(3, 8)
    assert gc.tracer_ratio == 6        # the literal above assumes this
    dycore = DynamicalCore(
        mesh_g3, vc, DycoreConfig(dt=gc.dt_dyn, tracer_ratio=gc.tracer_ratio)
    )
    state = tropical_profile_state(mesh_g3, vc, rh_surface=0.85)
    rng = np.random.default_rng(0)
    state.theta = state.theta + 0.3 * rng.normal(size=state.theta.shape)
    tracer = Tracer()
    with tracing(tracer):
        for _ in range(gc.tracer_ratio):
            state = dycore.step(state)
    return tracer, state


def test_golden_span_sequence(traced_run):
    tracer, _ = traced_run
    assert tracer.span_sequence() == GOLDEN_SEQUENCE


def test_golden_sequence_stable_across_reruns(mesh_g3, traced_run):
    """Same seed, fresh solver: byte-identical sequence and step args."""
    vc = VerticalCoordinate.stretched(8)
    gc = scaled_grid_config(3, 8)
    dycore = DynamicalCore(
        mesh_g3, vc, DycoreConfig(dt=gc.dt_dyn, tracer_ratio=gc.tracer_ratio)
    )
    state = tropical_profile_state(mesh_g3, vc, rh_surface=0.85)
    rng = np.random.default_rng(0)
    state.theta = state.theta + 0.3 * rng.normal(size=state.theta.shape)
    tracer = Tracer()
    with tracing(tracer):
        for _ in range(gc.tracer_ratio):
            state = dycore.step(state)
    ref, _ = traced_run
    assert tracer.span_sequence() == ref.span_sequence()


def test_span_args_identify_steps_and_stages(traced_run):
    tracer, _ = traced_run
    steps = [s for s in tracer.events if s.kind is SpanKind.DYN_STEP]
    assert [s.args["step"] for s in sorted(steps, key=lambda s: s.seq)] == list(range(6))
    stages = [s for s in tracer.events if s.kind is SpanKind.RK_STAGE]
    assert {s.args["stage"] for s in stages} == {1, 2, 3}
    (tr_step,) = [s for s in tracer.events if s.kind is SpanKind.TRACER_STEP]
    assert tr_step.args["n_tracers"] >= 1


def test_untraced_run_bit_identical(mesh_g3, traced_run):
    """Tracing must not perturb the integration: the same run with the
    default disabled tracer produces bit-identical state."""
    _, traced_state = traced_run
    vc = VerticalCoordinate.stretched(8)
    gc = scaled_grid_config(3, 8)
    dycore = DynamicalCore(
        mesh_g3, vc, DycoreConfig(dt=gc.dt_dyn, tracer_ratio=gc.tracer_ratio)
    )
    state = tropical_profile_state(mesh_g3, vc, rh_surface=0.85)
    rng = np.random.default_rng(0)
    state.theta = state.theta + 0.3 * rng.normal(size=state.theta.shape)
    for _ in range(gc.tracer_ratio):
        state = dycore.step(state)
    assert np.array_equal(state.ps, traced_state.ps)
    assert np.array_equal(state.theta, traced_state.theta)
    assert np.array_equal(state.u, traced_state.u)
