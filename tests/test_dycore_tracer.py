"""Tests of the flux-limited (FCT) tracer transport: conservation and
shape preservation — the invariants the limiter exists to protect."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dycore import operators as ops
from repro.dycore.tracer import (
    MassFluxAccumulator,
    tracer_transport_hori_flux_limiter,
    vertical_tracer_transport,
)
from repro.grid.mesh import build_mesh
from repro.precision.policy import PrecisionPolicy


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


def _setup(mesh, seed=0, nlev=3):
    """A divergence-consistent flow and tracer field."""
    rng = np.random.default_rng(seed)
    dpi0 = np.full((mesh.nc, nlev), 1.0e4)
    # Solid-body-like flow scaled to a modest Courant number.
    axis = rng.normal(size=3)
    axis /= np.linalg.norm(axis)
    vel = np.cross(axis, mesh.edge_xyz)
    un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
    cfl_speed = 0.2 * mesh.de.min() / 600.0
    un = un / np.abs(un).max() * cfl_speed
    F = dpi0.mean() * np.repeat(un[:, None], nlev, axis=1)
    D = ops.divergence(mesh, F)
    dt = 600.0
    dpi1 = dpi0 - dt * D
    q = np.clip(
        np.exp(-((mesh.cell_lat - 0.3) ** 2 + (mesh.cell_lon - 1.0) ** 2) / 0.2),
        0.0, None,
    )[:, None] * np.ones(nlev)
    return q, F, dpi0, dpi1, dt


class TestConservation:
    def test_mass_conserved(self, mesh):
        q, F, dpi0, dpi1, dt = _setup(mesh)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        m0 = (q * dpi0 * mesh.cell_area[:, None]).sum()
        m1 = (q1 * dpi1 * mesh.cell_area[:, None]).sum()
        assert m1 == pytest.approx(m0, rel=1e-12)

    def test_constant_preserved(self, mesh):
        """A uniform mixing ratio is a fixed point of consistent transport."""
        _, F, dpi0, dpi1, dt = _setup(mesh)
        q = np.full((mesh.nc, 3), 0.007)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        np.testing.assert_allclose(q1, 0.007, rtol=1e-10)

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_conservation(self, seed):
        mesh = build_mesh(2)
        q, F, dpi0, dpi1, dt = _setup(mesh, seed=seed, nlev=2)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        m0 = (q * dpi0 * mesh.cell_area[:, None]).sum()
        m1 = (q1 * dpi1 * mesh.cell_area[:, None]).sum()
        assert m1 == pytest.approx(m0, rel=1e-10)


class TestShapePreservation:
    def test_no_new_extrema(self, mesh):
        q, F, dpi0, dpi1, dt = _setup(mesh)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        assert q1.min() >= q.min() - 1e-12
        assert q1.max() <= q.max() + 1e-12

    def test_positivity_from_nonnegative(self, mesh):
        q, F, dpi0, dpi1, dt = _setup(mesh)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        assert q1.min() >= -1e-14

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_monotone(self, seed):
        mesh = build_mesh(2)
        q, F, dpi0, dpi1, dt = _setup(mesh, seed=seed, nlev=2)
        q1 = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        assert q1.min() >= q.min() - 1e-10
        assert q1.max() <= q.max() + 1e-10

    def test_limiter_beats_unlimited_overshoot(self, mesh):
        """A step-function tracer: the limited update must not overshoot
        while a purely centred update does."""
        _, F, dpi0, dpi1, dt = _setup(mesh)
        q = (mesh.cell_lat > 0).astype(float)[:, None] * np.ones(3)
        q_lim = tracer_transport_hori_flux_limiter(mesh, q, F, dpi0, dpi1, dt)
        q_cen = (
            dpi0 * q - dt * ops.divergence(mesh, F * ops.cell_to_edge(mesh, q))
        ) / dpi1
        assert q_lim.max() <= 1.0 + 1e-12
        assert q_lim.min() >= -1e-12
        assert q_cen.max() > 1.0 or q_cen.min() < 0.0


class TestPrecisionPolicy:
    def test_mixed_precision_close_to_double(self, mesh):
        q, F, dpi0, dpi1, dt = _setup(mesh)
        q_dp = tracer_transport_hori_flux_limiter(
            mesh, q, F, dpi0, dpi1, dt, PrecisionPolicy(mixed=False)
        )
        q_mx = tracer_transport_hori_flux_limiter(
            mesh, q, F, dpi0, dpi1, dt, PrecisionPolicy(mixed=True)
        )
        rel = np.abs(q_mx - q_dp).max() / (np.abs(q_dp).max() + 1e-300)
        assert 0.0 < rel < 1e-4      # genuinely different, still accurate

    def test_mixed_precision_still_conservative(self, mesh):
        q, F, dpi0, dpi1, dt = _setup(mesh)
        q1 = tracer_transport_hori_flux_limiter(
            mesh, q, F, dpi0, dpi1, dt, PrecisionPolicy(mixed=True)
        )
        m0 = (q * dpi0 * mesh.cell_area[:, None]).sum()
        m1 = (q1 * dpi1 * mesh.cell_area[:, None]).sum()
        assert m1 == pytest.approx(m0, rel=1e-6)


class TestVerticalTransport:
    def test_column_mass_conserved(self):
        rng = np.random.default_rng(0)
        nc, nlev = 20, 8
        dpi = np.full((nc, nlev), 1.0e4)
        q = rng.random((nc, nlev)) * 1e-3
        M = np.zeros((nc, nlev + 1))
        M[:, 1:-1] = rng.normal(size=(nc, nlev - 1)) * 2.0
        dt = 100.0
        q1 = vertical_tracer_transport(q, M, dpi, dpi, dt)
        np.testing.assert_allclose(
            (q1 * dpi).sum(axis=1), (q * dpi).sum(axis=1), rtol=1e-12
        )

    def test_no_flux_identity(self):
        q = np.random.default_rng(1).random((5, 6))
        dpi = np.full((5, 6), 1e4)
        M = np.zeros((5, 7))
        q1 = vertical_tracer_transport(q, M, dpi, dpi, 100.0)
        np.testing.assert_allclose(q1, q, rtol=1e-14)

    def test_downward_flux_moves_tracer_down(self):
        nc, nlev = 1, 4
        dpi = np.full((nc, nlev), 1e4)
        q = np.array([[1.0, 0.0, 0.0, 0.0]])
        M = np.zeros((nc, nlev + 1))
        M[:, 1] = 5.0  # downward through interface below layer 0
        q1 = vertical_tracer_transport(q, M, dpi, dpi, 100.0)
        assert q1[0, 0] < 1.0
        assert q1[0, 1] > 0.0


class TestAccumulator:
    def test_mean_over_steps(self):
        acc = MassFluxAccumulator(4, 2)
        acc.add(np.full((4, 2), 1.0, dtype=np.float32))
        acc.add(np.full((4, 2), 3.0, dtype=np.float32))
        mean = acc.mean()
        assert mean.dtype == np.float64          # always double (3.4.2)
        np.testing.assert_allclose(mean, 2.0)
        assert acc.steps == 2

    def test_empty_mean_raises(self):
        with pytest.raises(RuntimeError):
            MassFluxAccumulator(2, 2).mean()

    def test_reset(self):
        acc = MassFluxAccumulator(2, 2)
        acc.add(np.ones((2, 2)))
        acc.reset()
        assert acc.steps == 0
