"""Tests of the spherical-harmonic spectrum diagnostics."""

import numpy as np
import pytest
from scipy.special import sph_harm_y

from repro.dycore.spectra import (
    effective_resolution,
    kinetic_energy_spectrum,
    power_spectrum,
    spherical_harmonic_coeffs,
)
from repro.grid.mesh import build_mesh


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


class TestProjection:
    def test_constant_field_is_l0(self, mesh):
        power = power_spectrum(mesh, np.full(mesh.nc, 2.0), lmax=6)
        assert power[0] > 0.0
        assert power[1:].max() < 1e-20 * power[0]

    def test_single_harmonic_recovered(self, mesh):
        """A pure Y_3^2 projects onto exactly l=3."""
        lon = np.arctan2(mesh.cell_xyz[:, 1], mesh.cell_xyz[:, 0])
        colat = np.pi / 2 - mesh.cell_lat
        field = np.sqrt(2.0) * sph_harm_y(3, 2, colat, lon).real
        power = power_spectrum(mesh, field, lmax=8)
        assert power[3] > 0.99 * power.sum()

    def test_parseval_band_limited(self, mesh):
        """For a band-limited field, sum of power equals the weighted
        mean square (the basis is orthonormal on the sphere)."""
        lon = np.arctan2(mesh.cell_xyz[:, 1], mesh.cell_xyz[:, 0])
        colat = np.pi / 2 - mesh.cell_lat
        field = (
            1.5 * sph_harm_y(1, 0, colat, lon).real
            + 0.5 * np.sqrt(2) * sph_harm_y(4, 1, colat, lon).real
        )
        power = power_spectrum(mesh, field, lmax=8)
        w = mesh.cell_area / mesh.cell_area.sum()
        ms = 4.0 * np.pi * (w * field**2).sum()
        assert power.sum() == pytest.approx(ms, rel=1e-3)

    def test_coefficients_shape(self, mesh):
        coeffs, l_of = spherical_harmonic_coeffs(mesh, np.ones(mesh.nc), lmax=5)
        assert coeffs.size == 36
        assert l_of.max() == 5

    def test_lmax_too_high_rejected(self):
        small = build_mesh(1)
        with pytest.raises(ValueError):
            power_spectrum(small, np.ones(small.nc), lmax=10)


class TestKESpectrum:
    def test_solid_body_flow_is_large_scale(self, mesh):
        """Solid-body rotation: u_lon ~ cos(lat), whose scalar expansion
        lives in the even low wavenumbers (l=0 mean + l=2)."""
        axis = np.array([0.0, 0.0, 10.0])
        vel = np.cross(axis, mesh.edge_xyz)
        un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
        spec = kinetic_energy_spectrum(mesh, un, lmax=6)
        assert spec[0] + spec[2] > 0.95 * spec.sum()
        assert spec[5] < 1e-3 * spec.sum()

    def test_multilevel_selects_layer(self, mesh):
        rng = np.random.default_rng(0)
        u = rng.normal(size=(mesh.ne, 3))
        s0 = kinetic_energy_spectrum(mesh, u, lmax=4, level=0)
        s2 = kinetic_energy_spectrum(mesh, u, lmax=4, level=2)
        assert not np.allclose(s0, s2)

    def test_model_run_spectrum_decays(self, mesh):
        """After a damped model run the KE spectrum tail falls off."""
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.state import baroclinic_wave_state
        from repro.dycore.vertical import VerticalCoordinate

        vc = VerticalCoordinate.uniform(5)
        st = baroclinic_wave_state(mesh, vc)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        st = core.run(st, 24)
        spec = kinetic_energy_spectrum(mesh, st.u, lmax=8, level=2)
        peak_l = int(np.argmax(spec[1:]) + 1)
        assert spec[8] < spec[peak_l]          # tail below the peak


class TestEffectiveResolution:
    def test_steep_spectrum(self):
        power = np.array([0.0, 1.0, 0.5, 0.1, 1e-4, 1e-5])
        assert effective_resolution(power, drop_factor=100.0) == 4

    def test_flat_spectrum_returns_end(self):
        power = np.ones(6)
        assert effective_resolution(power) == 5
