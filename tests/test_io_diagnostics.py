"""Tests of restart/history I/O, global budget diagnostics, and the
SWGOMP executor's cross-validation against the performance model."""

import numpy as np
import pytest

from repro.dycore.diagnostics import BudgetMonitor, compute_budgets
from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import solid_body_rotation_state, tropical_profile_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.model.io import HistoryWriter, load_state, save_state


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(2)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.stretched(6)


class TestRestart:
    def test_roundtrip_bit_exact(self, mesh, vc, tmp_path):
        st = tropical_profile_state(mesh, vc)
        st.time = 1234.5
        path = str(tmp_path / "restart.npz")
        save_state(path, st)
        back = load_state(path, mesh)
        np.testing.assert_array_equal(back.ps, st.ps)
        np.testing.assert_array_equal(back.u, st.u)
        np.testing.assert_array_equal(back.theta, st.theta)
        np.testing.assert_array_equal(back.phi, st.phi)
        for k in st.tracers:
            np.testing.assert_array_equal(back.tracers[k], st.tracers[k])
        assert back.time == st.time
        assert back.vcoord.nlev == vc.nlev
        np.testing.assert_array_equal(
            back.vcoord.sigma_interfaces, vc.sigma_interfaces
        )

    def test_restart_continues_identically(self, mesh, vc, tmp_path):
        """run(6) == run(3) -> save -> load -> run(3)."""
        st0 = solid_body_rotation_state(mesh, vc)
        core_a = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0, tracer_ratio=100))
        s = st0.copy()
        for _ in range(6):
            s = core_a.step(s)

        core_b = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0, tracer_ratio=100))
        t = st0.copy()
        for _ in range(3):
            t = core_b.step(t)
        path = str(tmp_path / "mid.npz")
        save_state(path, t)
        t2 = load_state(path, mesh)
        core_c = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0, tracer_ratio=100))
        for _ in range(3):
            t2 = core_c.step(t2)
        np.testing.assert_array_equal(t2.ps, s.ps)
        np.testing.assert_array_equal(t2.u, s.u)

    def test_mesh_mismatch_rejected(self, mesh, vc, tmp_path):
        st = tropical_profile_state(mesh, vc)
        path = str(tmp_path / "r.npz")
        save_state(path, st)
        other = build_mesh(1)
        with pytest.raises(ValueError):
            load_state(path, other)

    def test_rebuilds_mesh_when_not_given(self, mesh, vc, tmp_path):
        st = tropical_profile_state(mesh, vc)
        path = str(tmp_path / "r.npz")
        save_state(path, st)
        back = load_state(path)
        assert back.mesh.nc == mesh.nc


class TestHistoryWriter:
    def test_record_flush_read(self, tmp_path):
        w = HistoryWriter(str(tmp_path))
        for k in range(5):
            w.record(float(k), precip=np.full(10, k), tmean=float(100 + k))
        p1 = w.flush()
        for k in range(5, 8):
            w.record(float(k), precip=np.full(10, k), tmean=float(100 + k))
        p2 = w.flush()
        times, tmean = HistoryWriter.read_series([p1, p2], "tmean")
        np.testing.assert_array_equal(times, np.arange(8.0))
        np.testing.assert_array_equal(tmean, 100.0 + np.arange(8.0))
        _, precip = HistoryWriter.read_series([p1, p2], "precip")
        assert precip.shape == (8, 10)

    def test_inconsistent_fields_rejected(self, tmp_path):
        w = HistoryWriter(str(tmp_path))
        w.record(0.0, a=1.0)
        with pytest.raises(ValueError):
            w.record(1.0, b=2.0)

    def test_flush_resets(self, tmp_path):
        w = HistoryWriter(str(tmp_path))
        w.record(0.0, a=1.0)
        w.flush()
        assert w.n_records == 0


class TestGlobalBudgets:
    def test_rest_state_budgets(self, mesh, vc):
        from repro.dycore.state import isothermal_rest_state

        st = isothermal_rest_state(mesh, vc)
        b = compute_budgets(st)
        assert b.kinetic_energy == 0.0
        assert b.internal_energy > 0.0
        assert b.dry_mass == pytest.approx(st.total_dry_mass())
        # Earth's atmosphere: ~5.2e18 kg.
        assert 4.0e18 < b.dry_mass < 6.0e18

    def test_mass_conserved_exactly_over_run(self, mesh, vc):
        st = solid_body_rotation_state(mesh, vc)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        mon = BudgetMonitor()
        mon.record(st)
        for _ in range(3):
            st = core.run(st, 6)
            mon.record(st)
        assert mon.relative_drift("dry_mass") < 1e-13

    def test_energy_drift_bounded(self, mesh, vc):
        """Total energy drifts only through explicit diffusion: small."""
        st = solid_body_rotation_state(mesh, vc)
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        mon = BudgetMonitor()
        mon.record(st)
        st = core.run(st, 18)          # 3 hours
        mon.record(st)
        # Explicit diffusion + RK dissipation: ~1% over 3 h is the
        # measured scale; the check guards against runaway drift.
        assert mon.relative_drift("total_energy") < 0.03

    def test_angular_momentum_dominated_by_rotation(self, mesh, vc):
        st = solid_body_rotation_state(mesh, vc, u0=20.0)
        b = compute_budgets(st)
        # Omega a^2 cos^2 integrated over the atmosphere's ~5.2e18 kg:
        # ~1e28 kg m^2/s (the rotation term dwarfs the 20 m/s wind term).
        assert 0.5e28 < b.axial_angular_momentum < 2e28

    def test_enstrophy_positive_with_flow(self, mesh, vc):
        st = solid_body_rotation_state(mesh, vc)
        assert compute_budgets(st).potential_enstrophy > 0.0


class TestSWGOMPExecutor:
    def test_executes_all_kernels(self, mesh):
        from repro.sunway.execution import SWGOMPExecutor

        ex = SWGOMPExecutor(mesh, nlev=6)
        step = ex.execute_step()
        assert len(step.runs) == 6
        assert step.kernel_seconds > 0
        assert step.utilization > 0.95
        assert all(r.executed for r in step.runs)

    def test_dynamic_schedule_also_works(self, mesh):
        from repro.sunway.execution import SWGOMPExecutor

        ex = SWGOMPExecutor(mesh, nlev=6)
        step = ex.execute_step(schedule="dynamic", run_numpy=False)
        assert step.kernel_seconds > 0

    def test_validates_against_perf_model(self, mesh):
        """Ties the Fig. 9 machinery to the Figs. 10-11 machinery: the
        analytic/executed ratio equals the reuse/indirect quotient."""
        from repro.sunway.execution import SWGOMPExecutor

        ex = SWGOMPExecutor(build_mesh(3), nlev=8)
        v = ex.validate_against_perf_model("G6")
        assert v["ratio"] == pytest.approx(v["expected_ratio"], rel=0.25)
