"""Unit tests of the span tracer (repro.obs.trace)."""

import json

import pytest

from repro.obs import Span, SpanKind, Tracer, get_tracer, set_tracer, tracing
from repro.obs.trace import _NULL_SPAN


class TestSpanRecording:
    def test_span_records_on_close(self):
        t = Tracer()
        with t.span("work", SpanKind.KERNEL_LAUNCH):
            assert len(t) == 0       # open spans are not yet events
        assert len(t) == 1
        sp = t.events[0]
        assert sp.name == "work"
        assert sp.kind is SpanKind.KERNEL_LAUNCH
        assert sp.t1 >= sp.t0
        assert sp.wall_seconds >= 0.0

    def test_set_attaches_sim_seconds_and_args(self):
        t = Tracer()
        with t.span("k", SpanKind.CHUNK, cpe=3) as sp:
            sp.set(sim_seconds=1.5e-6, start=0, end=10)
        sp = t.events[0]
        assert sp.sim_seconds == 1.5e-6
        assert sp.cpe == 3
        assert sp.args == {"start": 0, "end": 10}

    def test_instant_has_zero_like_duration(self):
        t = Tracer()
        t.instant("launch", SpanKind.KERNEL_LAUNCH, sim_seconds=30e-6)
        assert len(t) == 1
        assert t.events[0].sim_seconds == 30e-6

    def test_seq_preserves_open_order_under_nesting(self):
        t = Tracer()
        with t.span("outer", SpanKind.DYN_STEP):
            with t.span("inner", SpanKind.RK_STAGE):
                pass
        # Close order is inner-first; open (seq) order is outer-first.
        assert [s.name for s in t.events] == ["inner", "outer"]
        assert t.span_sequence() == [
            ("dyn_step", "outer"), ("rk_stage", "inner"),
        ]

    def test_span_sequence_kind_filter(self):
        t = Tracer()
        with t.span("a", SpanKind.DYN_STEP):
            pass
        with t.span("b", SpanKind.CHUNK):
            pass
        assert t.span_sequence(kinds={SpanKind.CHUNK}) == [("chunk", "b")]

    def test_clear(self):
        t = Tracer()
        with t.span("a", SpanKind.DYN_STEP):
            pass
        t.clear()
        assert len(t) == 0
        assert t.span_sequence() == []


class TestDisabledTracer:
    def test_returns_shared_null_span(self):
        t = Tracer(enabled=False)
        sp = t.span("x", SpanKind.CHUNK)
        assert sp is _NULL_SPAN
        assert sp.set(sim_seconds=1.0, foo=2) is sp
        with sp:
            pass
        assert len(t) == 0

    def test_instant_noop(self):
        t = Tracer(enabled=False)
        t.instant("x")
        assert len(t) == 0

    def test_empty_tracer_is_truthy(self):
        # Tracer defines __len__; an empty tracer must still be truthy or
        # `tracing(tracer)` would silently swap in a fresh one.
        assert bool(Tracer()) is True


class TestListeners:
    def test_listener_sees_open_and_close(self):
        opened, closed = [], []

        class L:
            def on_span_open(self, sp):
                opened.append(sp.name)

            def on_span_close(self, sp):
                closed.append(sp.name)

        t = Tracer(record=False)
        t.add_listener(L())
        with t.span("outer", SpanKind.DYN_STEP):
            with t.span("inner", SpanKind.RK_STAGE):
                pass
        assert opened == ["outer", "inner"]
        assert closed == ["inner", "outer"]
        assert len(t) == 0           # record=False retains nothing

    def test_partial_listener_tolerated(self):
        class OnlyClose:
            def on_span_close(self, sp):
                self.seen = sp.name

        lis = OnlyClose()
        t = Tracer()
        t.add_listener(lis)
        with t.span("a", SpanKind.CHUNK):
            pass
        assert lis.seen == "a"

    def test_remove_listener(self):
        class L:
            n = 0

            def on_span_open(self, sp):
                type(self).n += 1

        lis = L()
        t = Tracer()
        t.add_listener(lis)
        with t.span("a", SpanKind.CHUNK):
            pass
        t.remove_listener(lis)
        with t.span("b", SpanKind.CHUNK):
            pass
        assert L.n == 1


class TestAggregate:
    def test_aggregate_sums_by_kind_and_name(self):
        t = Tracer()
        for _ in range(3):
            with t.span("k", SpanKind.CHUNK) as sp:
                sp.set(sim_seconds=2.0)
        agg = t.aggregate()
        st = agg[("chunk", "k")]
        assert st.count == 3
        assert st.sim_seconds == pytest.approx(6.0)
        assert st.wall_seconds >= 0.0
        d = st.to_dict()
        assert d["count"] == 3 and d["sim_seconds"] == pytest.approx(6.0)


class TestChromeTrace:
    def test_export_structure(self, tmp_path):
        t = Tracer()
        with t.span("region", SpanKind.KERNEL_LAUNCH, rank=2, cpe=7) as sp:
            sp.set(sim_seconds=1e-5, n_elems=100)
        path = t.write_chrome_trace(str(tmp_path / "trace.json"))
        doc = json.load(open(path))
        assert doc["displayTimeUnit"] == "ms"
        (ev,) = doc["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["name"] == "region"
        assert ev["cat"] == "sunway"
        assert ev["pid"] == 2 and ev["tid"] == 7
        assert ev["ts"] >= 0.0 and ev["dur"] >= 0.0
        assert ev["args"]["sim_seconds"] == 1e-5
        assert ev["args"]["n_elems"] == 100

    def test_empty_trace_loads(self):
        doc = Tracer().to_chrome_trace()
        assert doc["traceEvents"] == []
        json.loads(json.dumps(doc))

    def test_events_sorted_by_open_order(self):
        t = Tracer()
        with t.span("outer", SpanKind.DYN_STEP):
            with t.span("inner", SpanKind.RK_STAGE):
                pass
        names = [e["name"] for e in t.to_chrome_trace()["traceEvents"]]
        assert names == ["outer", "inner"]


class TestGlobalTracer:
    def test_default_global_disabled(self):
        assert get_tracer().enabled is False

    def test_tracing_installs_and_restores(self):
        prev = get_tracer()
        mine = Tracer()
        with tracing(mine) as t:
            assert t is mine                  # not silently replaced
            assert get_tracer() is mine
        assert get_tracer() is prev

    def test_tracing_default_tracer(self):
        with tracing() as t:
            assert t.enabled
            with get_tracer().span("x", SpanKind.CHUNK):
                pass
        assert len(t) == 1

    def test_set_tracer_returns_previous(self):
        prev = get_tracer()
        mine = Tracer()
        old = set_tracer(mine)
        try:
            assert old is prev
            assert get_tracer() is mine
        finally:
            set_tracer(prev)

    def test_restored_after_exception(self):
        prev = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing():
                raise RuntimeError("boom")
        assert get_tracer() is prev


def test_span_dataclass_defaults():
    sp = Span(name="x", kind=SpanKind.INSTANT, seq=0, t0=1.0)
    assert sp.t1 is None
    assert sp.wall_seconds == 0.0
    assert sp.args == {}
