"""Tests of the rank executors: the forked shared-memory path must be
bitwise indistinguishable from the serial in-process loop.

The contract (documented in ``repro.parallel.executor``): both executors
run the same ``DynamicalCore`` code on the same local arrays, so every
gathered prognostic field — and every intermediate the driver observes —
matches bit for bit.  These tests fork real worker processes; they are
skipped on platforms without ``fork``.
"""

import os

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig
from repro.dycore.state import baroclinic_wave_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.parallel.driver import DistributedDycore
from repro.parallel.executor import (
    ProcessRankExecutor,
    SerialRankExecutor,
    _ShmArena,
)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="ProcessRankExecutor requires fork"
)


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.uniform(5)


def _run(mesh, vc, workers: int, steps: int = 3, sponge: int = 0):
    cfg = DycoreConfig(dt=600.0, sponge_levels=sponge)
    d = DistributedDycore(mesh, vc, cfg, nparts=4, workers=workers)
    d.scatter(baroclinic_wave_state(mesh, vc))
    d.run(steps)
    fields = d.gather()
    d.close()
    return fields


class TestBitwiseEquality:
    def test_two_workers_match_serial_bitwise(self, mesh, vc):
        serial = _run(mesh, vc, workers=1)
        parallel = _run(mesh, vc, workers=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)

    def test_three_workers_with_sponge_match_serial_bitwise(self, mesh, vc):
        """Uneven rank deal (4 ranks over 3 workers) plus the sponge
        command path, which writes state in the workers."""
        serial = _run(mesh, vc, workers=1, sponge=2)
        parallel = _run(mesh, vc, workers=3, sponge=2)
        for a, b in zip(serial, parallel):
            assert np.array_equal(a, b)


class TestExecutorLifecycle:
    def test_workers_selects_executor_class(self, mesh, vc):
        cfg = DycoreConfig(dt=600.0)
        d1 = DistributedDycore(mesh, vc, cfg, nparts=4, workers=1)
        d1.scatter(baroclinic_wave_state(mesh, vc))
        assert isinstance(d1._executor, SerialRankExecutor)
        d1.close()

        d2 = DistributedDycore(mesh, vc, cfg, nparts=4, workers=2)
        d2.scatter(baroclinic_wave_state(mesh, vc))
        assert isinstance(d2._executor, ProcessRankExecutor)
        d2.close()

    def test_workers_clamped_to_nparts(self, mesh, vc):
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=2, workers=16
        )
        assert d.workers == 2
        with pytest.raises(ValueError):
            DistributedDycore(
                mesh, vc, DycoreConfig(dt=600.0), nparts=2, workers=0
            )

    def test_close_reaps_workers(self, mesh, vc):
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        procs = list(d._executor._procs)
        assert all(p.is_alive() for p in procs)
        d.close()
        assert all(not p.is_alive() for p in procs)

    def test_close_is_idempotent(self, mesh, vc):
        """Satellite contract: close() any number of times, through the
        driver or the executor, never double-closes a pipe."""
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        ex = d._executor
        assert not ex.closed
        d.close()
        assert ex.closed
        d.close()          # second driver close: no-op
        ex.close()         # direct executor close after the fact: no-op
        assert ex.closed

    def test_broadcast_after_close_raises(self, mesh, vc):
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        ex = d._executor
        d.close()
        with pytest.raises(RuntimeError, match="closed"):
            ex.compute_tendencies()

    def test_finalizer_reaps_workers_on_gc(self, mesh, vc):
        """Dropping the last reference must reap the fork set exactly
        once (weakref.finalize), with no __del__ double-close."""
        import gc

        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        procs = list(d._executor._procs)
        assert all(p.is_alive() for p in procs)
        d._executor = None
        gc.collect()
        for p in procs:
            p.join(timeout=10.0)
        assert all(not p.is_alive() for p in procs)
        d.close()

    def test_rescatter_replaces_workers(self, mesh, vc):
        """scatter() on a live parallel driver reaps the old fork set
        (which snapshotted the previous arena) and forks a fresh one."""
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        state = baroclinic_wave_state(mesh, vc)
        d.scatter(state)
        old = list(d._executor._procs)
        d.step()
        d.scatter(state)
        assert all(not p.is_alive() for p in old)
        d.step()
        d.close()


class TestShmArena:
    def test_views_are_shared_across_fork(self):
        """A child write to an arena view must be visible to the parent —
        the property the whole executor relies on."""
        import multiprocessing as mp

        arena = _ShmArena(_ShmArena.nbytes([(4,)]))
        view = arena.take((4,))
        view[:] = 0.0

        def child():
            view[:] = [1.0, 2.0, 3.0, 4.0]

        proc = mp.get_context("fork").Process(target=child)
        proc.start()
        proc.join(timeout=10.0)
        assert np.array_equal(view, [1.0, 2.0, 3.0, 4.0])

    def test_take_is_disjoint_and_float64(self):
        arena = _ShmArena(_ShmArena.nbytes([(3,), (2, 2)]))
        a = arena.take((3,))
        b = arena.take((2, 2))
        a[:] = 1.0
        b[:] = 2.0
        assert a.dtype == np.float64 and b.dtype == np.float64
        assert np.all(a == 1.0) and np.all(b == 2.0)

    def test_worker_error_propagates(self, mesh, vc):
        """An exception inside a worker surfaces as a driver-side
        RuntimeError instead of a hang."""
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=2
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        ex = d._executor
        ex._conns[0].send(("tend", 99))  # out-of-range slot index
        with pytest.raises((RuntimeError, EOFError, IndexError)):
            status, detail = ex._conns[0].recv()
            if status != "ok":
                raise RuntimeError(detail)
        d.close()
