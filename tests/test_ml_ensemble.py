"""Tests of the tendency-network ensemble (paper reference [13])."""

import numpy as np
import pytest

from repro.ml.ensemble import TendencyEnsemble


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(600, 5, 6))
    y = np.stack([0.5 * x[:, 2] + x[:, 3], -0.4 * x[:, 3]], axis=1)
    ens = TendencyEnsemble(nlev=6, n_members=3, width=16, n_resunits=1)
    losses = ens.fit(x, y, epochs=15, lr=3e-3, seed=0)
    return ens, x, y, losses


class TestEnsemble:
    def test_members_differ(self, trained):
        ens, x, *_ = trained
        p0 = ens.members[0].predict(x[:10])
        p1 = ens.members[1].predict(x[:10])
        assert not np.allclose(p0, p1)

    def test_all_members_learned(self, trained):
        ens, x, y, losses = trained
        assert all(l < 1.0 for l in losses)

    def test_mean_at_least_as_good_as_worst_member(self, trained):
        ens, x, y, _ = trained
        mean, _ = ens.predict_with_spread(x)
        err_mean = ((mean - y) ** 2).mean()
        errs = [((m.predict(x) - y) ** 2).mean() for m in ens.members]
        assert err_mean <= max(errs) + 1e-12

    def test_spread_positive_and_shaped(self, trained):
        ens, x, *_ = trained
        mean, spread = ens.predict_with_spread(x[:20])
        assert mean.shape == (20, 2, 6)
        assert spread.shape == (20, 2, 6)
        assert np.all(spread >= 0.0)
        assert spread.max() > 0.0

    def test_ood_inputs_have_larger_spread(self, trained):
        """Out-of-distribution inputs spread the members more."""
        ens, x, *_ = trained
        _, spread_in = ens.predict_with_spread(x[:100])
        rng = np.random.default_rng(1)
        x_ood = rng.normal(size=(100, 5, 6)) * 8.0      # far outside training
        _, spread_out = ens.predict_with_spread(x_ood)
        assert spread_out.mean() > 1.5 * spread_in.mean()

    def test_damping_reduces_ood_magnitude(self, trained):
        ens, x, *_ = trained
        rng = np.random.default_rng(2)
        x_ood = rng.normal(size=(50, 5, 6)) * 8.0
        mean, _ = ens.predict_with_spread(x_ood)
        damped = ens.predict(x_ood)
        assert np.abs(damped).sum() <= np.abs(mean).sum()

    def test_q1q2_interface(self, trained):
        ens, *_ = trained
        rng = np.random.default_rng(3)
        profiles = [rng.normal(size=(7, 6)) for _ in range(5)]
        q1, q2 = ens.predict_q1q2(*profiles)
        assert q1.shape == (7, 6)
        assert q2.shape == (7, 6)

    def test_single_member_is_plain_net(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(100, 5, 4))
        y = rng.normal(size=(100, 2, 4))
        ens = TendencyEnsemble(nlev=4, n_members=1, width=8, n_resunits=1)
        ens.fit(x, y, epochs=1)
        np.testing.assert_allclose(ens.predict(x), ens.members[0].predict(x))

    def test_zero_members_rejected(self):
        with pytest.raises(ValueError):
            TendencyEnsemble(nlev=4, n_members=0)


class TestSpreadCache:
    """The per-input member-stats cache: repeated calls on the same
    input must not re-run the member forward passes."""

    @staticmethod
    def _fresh(seed: int) -> np.ndarray:
        """An input no other test has fed the module-scoped ensemble —
        the cache holds one entry, so reuse would alias across tests."""
        return np.random.default_rng(100 + seed).normal(size=(20, 5, 6))

    def test_repeat_call_is_byte_identical_without_recompute(self, trained):
        ens, *_ = trained
        x = self._fresh(0)
        before = ens.stat_recomputes
        mean1, spread1 = ens.predict_with_spread(x)
        assert ens.stat_recomputes == before + 1
        mean2, spread2 = ens.predict_with_spread(x)
        # Second call: zero forward passes, the same bytes back.
        assert ens.stat_recomputes == before + 1
        assert mean1.tobytes() == mean2.tobytes()
        assert spread1.tobytes() == spread2.tobytes()
        assert mean2 is mean1 and spread2 is spread1

    def test_predict_reuses_guard_probe_stats(self, trained):
        """The common serving pattern — a guard probes the spread, then
        predict() runs on the same input — costs one member sweep."""
        ens, *_ = trained
        x = self._fresh(1)
        before = ens.stat_recomputes
        ens.predict_with_spread(x)
        ens.predict(x)
        assert ens.stat_recomputes == before + 1

    def test_changed_input_misses(self, trained):
        ens, *_ = trained
        before = ens.stat_recomputes
        ens.predict_with_spread(self._fresh(2))
        ens.predict_with_spread(self._fresh(3))
        assert ens.stat_recomputes == before + 2

    def test_cached_arrays_are_read_only(self, trained):
        ens, *_ = trained
        mean, spread = ens.predict_with_spread(self._fresh(4))
        with pytest.raises(ValueError):
            mean[0, 0, 0] = 1.0
        with pytest.raises(ValueError):
            spread[0, 0, 0] = 1.0

    def test_fit_invalidates_cache(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(120, 5, 4))
        y = rng.normal(size=(120, 2, 4))
        ens = TendencyEnsemble(nlev=4, n_members=2, width=8, n_resunits=1)
        ens.fit(x, y, epochs=1)
        mean1, _ = ens.predict_with_spread(x[:10])
        ens.fit(x, y, epochs=1)
        mean2, _ = ens.predict_with_spread(x[:10])
        # Weights changed: the stale stats must not be served back.
        assert ens.stat_recomputes == 2
        assert mean1.tobytes() != mean2.tobytes()
