"""Tests of the BFS index reordering (section 3.1.3)."""

import numpy as np
import pytest

from repro.grid.mesh import PAD, build_mesh
from repro.grid.reorder import bandwidth, bfs_cell_order, reorder_mesh


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


class TestBFSOrder:
    def test_is_permutation(self, mesh):
        order = bfs_cell_order(mesh)
        assert sorted(order.tolist()) == list(range(mesh.nc))

    def test_starts_at_start(self, mesh):
        order = bfs_cell_order(mesh, start=17)
        assert order[0] == 17

    def test_invalid_start_rejected(self, mesh):
        with pytest.raises(ValueError):
            bfs_cell_order(mesh, start=mesh.nc)

    def test_bfs_levels_monotone(self, mesh):
        """In BFS order, each cell's first-visited neighbour precedes it."""
        order = bfs_cell_order(mesh)
        pos = np.empty(mesh.nc, dtype=int)
        pos[order] = np.arange(mesh.nc)
        for c in range(mesh.nc):
            if pos[c] == 0:
                continue
            nbrs = mesh.cell_neighbors[c]
            nbrs = nbrs[nbrs != PAD]
            assert pos[nbrs].min() < pos[c]


class TestReorderMesh:
    def test_improves_bandwidth(self, mesh):
        new, _ = reorder_mesh(mesh)
        assert bandwidth(new) < bandwidth(mesh) * 0.5

    def test_preserves_geometry_multisets(self, mesh):
        new, _ = reorder_mesh(mesh)
        np.testing.assert_allclose(
            np.sort(new.cell_area), np.sort(mesh.cell_area)
        )
        np.testing.assert_allclose(np.sort(new.de), np.sort(mesh.de))
        np.testing.assert_allclose(np.sort(new.le), np.sort(mesh.le))
        assert new.cell_area.sum() == pytest.approx(mesh.cell_area.sum())

    def test_preserves_topology_invariants(self, mesh):
        new, _ = reorder_mesh(mesh)
        assert new.euler_characteristic() == 2
        s = np.zeros(new.ne)
        valid = new.cell_edges != PAD
        np.add.at(s, new.cell_edges[valid], new.cell_edge_sign[valid])
        np.testing.assert_allclose(s, 0.0)

    def test_permutations_invertible(self, mesh):
        new, perms = reorder_mesh(mesh)
        # cell k of the new mesh is old cell perms["cell"][k].
        np.testing.assert_allclose(
            new.cell_xyz, mesh.cell_xyz[perms["cell"]]
        )
        np.testing.assert_allclose(
            new.edge_normal, mesh.edge_normal[perms["edge"]]
        )
        np.testing.assert_allclose(
            new.vertex_area, mesh.vertex_area[perms["vertex"]]
        )

    def test_operators_equivalent_after_reorder(self, mesh):
        """Divergence commutes with renumbering."""
        from repro.dycore.operators import divergence

        new, perms = reorder_mesh(mesh)
        rng = np.random.default_rng(0)
        flux_old = rng.normal(size=mesh.ne)
        flux_new = flux_old[perms["edge"]]
        div_old = divergence(mesh, flux_old)
        div_new = divergence(new, flux_new)
        np.testing.assert_allclose(div_new, div_old[perms["cell"]], atol=1e-18)

    def test_rejects_bad_permutation(self, mesh):
        with pytest.raises(ValueError):
            reorder_mesh(mesh, cell_order=np.zeros(mesh.nc, dtype=int))
