"""Tests of the icosahedral triangulation generator."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.icosahedral import (
    base_icosahedron,
    grid_cell_count,
    grid_edge_count,
    grid_mean_spacing_km,
    grid_resolution_range_km,
    grid_vertex_count,
    icosahedral_triangulation,
    subdivide,
)


class TestBaseIcosahedron:
    def test_counts(self):
        points, faces = base_icosahedron()
        assert points.shape == (12, 3)
        assert faces.shape == (20, 3)

    def test_unit_vectors(self):
        points, _ = base_icosahedron()
        np.testing.assert_allclose(np.linalg.norm(points, axis=1), 1.0, atol=1e-14)

    def test_faces_outward_oriented(self):
        points, faces = base_icosahedron()
        p0, p1, p2 = points[faces[:, 0]], points[faces[:, 1]], points[faces[:, 2]]
        normal = np.cross(p1 - p0, p2 - p0)
        centroid = (p0 + p1 + p2) / 3.0
        assert np.all(np.einsum("ij,ij->i", normal, centroid) > 0)

    def test_every_vertex_in_five_faces(self):
        _, faces = base_icosahedron()
        counts = np.bincount(faces.ravel(), minlength=12)
        assert np.all(counts == 5)

    def test_all_edges_shared_by_two_faces(self):
        _, faces = base_icosahedron()
        ea = faces[:, [0, 1, 2]].ravel()
        eb = faces[:, [1, 2, 0]].ravel()
        pairs = np.sort(np.stack([ea, eb], axis=1), axis=1)
        _, counts = np.unique(pairs, axis=0, return_counts=True)
        assert np.all(counts == 2)


class TestSubdivide:
    def test_one_level_counts(self):
        points, faces = base_icosahedron()
        p2, f2 = subdivide(points, faces)
        assert p2.shape[0] == 42
        assert f2.shape[0] == 80

    def test_midpoints_on_sphere(self):
        points, faces = base_icosahedron()
        p2, _ = subdivide(points, faces)
        np.testing.assert_allclose(np.linalg.norm(p2, axis=1), 1.0, atol=1e-14)

    def test_original_points_preserved(self):
        points, faces = base_icosahedron()
        p2, _ = subdivide(points, faces)
        np.testing.assert_array_equal(p2[:12], points)


class TestTriangulation:
    @pytest.mark.parametrize("level", [0, 1, 2, 3, 4])
    def test_closed_form_counts(self, level):
        points, faces = icosahedral_triangulation(level)
        assert points.shape[0] == grid_cell_count(level)
        assert faces.shape[0] == grid_vertex_count(level)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            icosahedral_triangulation(-1)

    @given(st.integers(min_value=0, max_value=3))
    @settings(max_examples=4, deadline=None)
    def test_euler_characteristic(self, level):
        points, faces = icosahedral_triangulation(level)
        ea = faces[:, [0, 1, 2]].ravel()
        eb = faces[:, [1, 2, 0]].ravel()
        pairs = np.sort(np.stack([ea, eb], axis=1), axis=1)
        n_edges = np.unique(pairs, axis=0).shape[0]
        assert points.shape[0] - n_edges + faces.shape[0] == 2
        assert n_edges == grid_edge_count(level)


class TestTable2Counts:
    """Table 2's cell/edge/vertex columns follow the closed formulas."""

    @pytest.mark.parametrize(
        "level,cells,edges,vertices",
        [
            (6, 40_962, 122_880, 81_920),              # 41.0K / 123K / 81.9K
            (8, 655_362, 1_966_080, 1_310_720),        # 655K / 1.97M / 1.31M
            (9, 2_621_442, 7_864_320, 5_242_880),      # 2.62M / 7.86M / 5.24M
            (10, 10_485_762, 31_457_280, 20_971_520),  # 10.5M / 31.5M / 21.0M
            (11, 41_943_042, 125_829_120, 83_886_080), # 41.9M / 126M / 83.9M
            (12, 167_772_162, 503_316_480, 335_544_320),  # 167M / 503M / 336M
        ],
    )
    def test_paper_counts(self, level, cells, edges, vertices):
        assert grid_cell_count(level) == cells
        assert grid_edge_count(level) == edges
        assert grid_vertex_count(level) == vertices

    def test_g6_resolution_range_matches_table2(self):
        lo, hi = grid_resolution_range_km(6)
        # Table 2: 92.5 ~ 113 km
        assert 85.0 < lo < 100.0
        assert 105.0 < hi < 120.0

    def test_g12_resolution_is_km_scale(self):
        lo, hi = grid_resolution_range_km(12)
        # Table 2: 1.47 ~ 1.92 km
        assert 1.2 < lo < 1.7
        assert 1.6 < hi < 2.1

    def test_mean_spacing_decreases_4x_per_2_levels(self):
        r6 = grid_mean_spacing_km(6)
        r8 = grid_mean_spacing_km(8)
        assert r6 / r8 == pytest.approx(4.0, rel=1e-3)
