"""Shared fixtures: session-scoped meshes and vertical coordinates.

Mesh construction is deterministic, so sharing instances across tests is
safe as long as tests do not mutate them; tests that need private copies
build their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dycore.vertical import VerticalCoordinate
from repro.grid import build_mesh


@pytest.fixture(scope="session")
def mesh_g1():
    return build_mesh(1)


@pytest.fixture(scope="session")
def mesh_g2():
    return build_mesh(2)


@pytest.fixture(scope="session")
def mesh_g3():
    return build_mesh(3)


@pytest.fixture(scope="session")
def vcoord10():
    return VerticalCoordinate.uniform(10)


@pytest.fixture(scope="session")
def vcoord8s():
    return VerticalCoordinate.stretched(8)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
