"""Unit tests of the content-addressed result cache (repro.serve.cache)."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.serve import ForecastRequest, ResultCache
from repro.serve.request import ForecastError, ForecastResult, MemberResult


def _result(request: ForecastRequest, status: str = "ok",
            seed: int = 0) -> ForecastResult:
    rng = np.random.default_rng(seed)
    member = MemberResult(
        member=0, fields={"u": rng.normal(size=(4, 3))},
        digest=f"digest-{seed}", max_wind=1.0, mean_precip=0.0,
    )
    return ForecastResult(
        request=request, key=request.cache_key(), status=status,
        members=(member,) if status == "ok" else (),
        error=None if status == "ok" else ForecastError("FAULT", "boom"),
    )


class TestResultCache:
    def test_miss_then_hit_same_object(self):
        cache = ResultCache()
        req = ForecastRequest(seed=1)
        key = req.cache_key()
        assert cache.get(key) is None
        stored = _result(req)
        cache.put(key, stored)
        hit = cache.get(key)
        # The hit IS the stored result: byte-identity is structural.
        assert hit is stored
        assert hit.digest() == stored.digest()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_errors_never_cached(self):
        cache = ResultCache()
        req = ForecastRequest(seed=2)
        cache.put(req.cache_key(), _result(req, status="error"))
        assert cache.get(req.cache_key()) is None
        assert len(cache) == 0

    def test_distinct_requests_never_collide(self):
        cache = ResultCache()
        a, b = ForecastRequest(seed=0), ForecastRequest(seed=1)
        cache.put(a.cache_key(), _result(a, seed=0))
        cache.put(b.cache_key(), _result(b, seed=1))
        assert cache.get(a.cache_key()).members[0].digest == "digest-0"
        assert cache.get(b.cache_key()).members[0].digest == "digest-1"

    def test_lru_eviction_order(self):
        cache = ResultCache(capacity=2)
        reqs = [ForecastRequest(seed=i) for i in range(3)]
        cache.put(reqs[0].cache_key(), _result(reqs[0]))
        cache.put(reqs[1].cache_key(), _result(reqs[1]))
        assert cache.get(reqs[0].cache_key()) is not None  # refresh 0
        cache.put(reqs[2].cache_key(), _result(reqs[2]))   # evicts 1
        assert cache.get(reqs[1].cache_key()) is None
        assert cache.get(reqs[0].cache_key()) is not None
        assert cache.get(reqs[2].cache_key()) is not None
        assert cache.stats()["evictions"] == 1

    def test_scheduler_keeps_supplied_empty_cache(self):
        """Regression: an empty ResultCache is falsy (len() == 0), so a
        `cache or default` guard silently replaced a user-supplied cache
        with a default-capacity one."""
        from repro.serve import ForecastScheduler, ModelPool

        cache = ResultCache(capacity=7)
        sched = ForecastScheduler(max_workers=1,
                                  pool=ModelPool(max_models=1), cache=cache)
        try:
            assert sched.cache is cache
            assert sched.stats()["cache"]["capacity"] == 7
        finally:
            sched.shutdown()

    def test_concurrent_put_get_consistent(self):
        """Hammer one cache from many threads: every get returns either
        None or a complete, correctly-keyed result — never a torn one."""
        cache = ResultCache(capacity=16)
        reqs = [ForecastRequest(seed=i) for i in range(32)]
        results = {r.cache_key(): _result(r, seed=i)
                   for i, r in enumerate(reqs)}
        stop = threading.Event()
        bad: list[str] = []

        def writer():
            while not stop.is_set():
                for key, res in results.items():
                    cache.put(key, res)

        def reader():
            while not stop.is_set():
                for key, res in results.items():
                    got = cache.get(key)
                    if got is not None and got.key != key:
                        bad.append(key)

        with ThreadPoolExecutor(max_workers=6) as ex:
            futs = [ex.submit(writer) for _ in range(2)]
            futs += [ex.submit(reader) for _ in range(4)]
            import time
            time.sleep(0.3)
            stop.set()
            for f in futs:
                f.result(timeout=10)
        assert not bad
        assert len(cache) <= 16
