"""Property-based tests of the LDCache simulator.

Pure-pytest randomised properties: each case draws a random address
stream (seeded, so failures replay) against a random cache geometry and
checks the accounting invariants that must hold for *any* stream:

* ``hits + misses == accesses`` — every access is classified exactly once;
* ``misses - evictions == occupancy`` — every miss fills one line and
  every eviction displaces one valid line, so the cache can't "leak"
  or invent residency;
* occupancy never exceeds the geometric capacity nor the number of
  distinct lines touched;
* the set-index mapping spreads a uniform stream over all sets.
"""

import numpy as np
import pytest

from repro.sunway.ldcache import LDCache, loop_access_stream

#: (size_bytes, ways, line_bytes) geometries, including the real LDCache.
GEOMETRIES = [
    (128 * 1024, 4, 256),        # the configured LDCache (128 sets)
    (8 * 1024, 2, 64),           # small: evicts quickly
    (4 * 1024, 1, 128),          # direct-mapped degenerate case
    (16 * 1024, 8, 64),          # high associativity
]


def random_streams(seed: int, n_cases: int = 6):
    """Generate (stream, span) pairs of varying footprint/locality."""
    rng = np.random.default_rng(seed)
    for _ in range(n_cases):
        n = int(rng.integers(1, 5000))
        span = int(rng.integers(256, 1 << int(rng.integers(10, 22))) + 256)
        if rng.random() < 0.5:
            # Uniform random bytes: worst-case locality.
            stream = rng.integers(0, span, size=n)
        else:
            # Strided walks from random bases: GRIST-loop-like locality.
            base = int(rng.integers(0, span))
            stride = int(rng.integers(1, 64))
            stream = (base + stride * np.arange(n)) % span
        yield stream.astype(np.int64), span


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("seed", range(8))
def test_accounting_invariants(geometry, seed):
    size, ways, line = geometry
    for stream, _span in random_streams(seed):
        cache = LDCache(size_bytes=size, ways=ways, line_bytes=line)
        stats = cache.run(stream)

        # Every access is exactly one of hit/miss.
        assert stats.accesses == len(stream)
        assert stats.hits + stats.misses == stats.accesses
        assert 0 <= stats.hits <= stats.accesses
        assert 0.0 <= stats.hit_ratio <= 1.0

        # Conservation of residency: fills minus displacements.
        occ = cache.occupancy()
        assert stats.misses - stats.evictions == occ

        # Occupancy bounded by capacity and by the touched footprint.
        capacity = cache.n_sets * cache.ways
        distinct_lines = len(np.unique(stream // line))
        assert 0 <= occ <= capacity
        assert occ <= distinct_lines
        # No evictions can have happened before capacity pressure existed.
        if distinct_lines <= cache.ways:
            assert stats.evictions == 0


@pytest.mark.parametrize("seed", range(4))
def test_rerun_of_resident_working_set_all_hits(seed):
    """Any stream fitting entirely in one way re-runs at 100% hits."""
    rng = np.random.default_rng(seed)
    cache = LDCache(size_bytes=8 * 1024, ways=2, line_bytes=64)
    # Footprint < one way (n_sets * line bytes) so nothing ever evicts.
    stream = rng.integers(0, cache.way_bytes // 2, size=600)
    cache.run(stream)
    before = cache.stats.hits
    cache.run(stream)
    assert cache.stats.hits - before == len(stream)
    assert cache.stats.evictions == 0


@pytest.mark.parametrize("seed", range(4))
def test_set_index_distribution_uniform_stream(seed):
    """A uniform address stream exercises every set, and the model's
    set mapping matches ``(addr // line) % n_sets``."""
    rng = np.random.default_rng(seed)
    cache = LDCache(size_bytes=8 * 1024, ways=2, line_bytes=64)
    n_sets = cache.n_sets
    # Cover the whole index space many times over.
    stream = rng.integers(0, n_sets * 64 * 16, size=8000)
    cache.run(stream)

    sets = (stream // cache.line_bytes) % n_sets
    counts = np.bincount(sets, minlength=n_sets)
    assert (counts > 0).all()
    # Rough uniformity: no set sees more than 3x the mean.
    assert counts.max() < 3.0 * counts.mean()
    # Every set the stream mapped to holds at least one valid line.
    assert ((cache._tags != -1).any(axis=1) == (counts > 0)).all()


def test_single_set_thrash_evicts_round_robin():
    """> ways distinct tags hammering one set evict on every miss."""
    cache = LDCache(size_bytes=4 * 1024, ways=2, line_bytes=64)
    n_sets = cache.n_sets
    # Five tags, all mapping to set 0.
    tags = [t * n_sets * 64 for t in range(5)]
    stream = np.array(tags * 40, dtype=np.int64)
    stats = cache.run(stream)
    assert stats.hits == 0                       # LRU + cyclic access: thrash
    assert stats.evictions == stats.misses - cache.ways
    assert cache.occupancy() == cache.ways


@pytest.mark.parametrize("geometry", GEOMETRIES)
@pytest.mark.parametrize("seed", range(8))
def test_batch_replay_bitwise_matches_scalar(geometry, seed):
    """``run_batch`` is a pure reimplementation of ``run``: for any
    stream it must produce identical stats *and* identical final
    tag/age arrays — the scalar loop is the oracle."""
    size, ways, line = geometry
    for stream, _span in random_streams(seed):
        scalar = LDCache(size_bytes=size, ways=ways, line_bytes=line)
        batch = LDCache(size_bytes=size, ways=ways, line_bytes=line)
        s_stats = scalar.run(stream)
        b_stats = batch.run_batch(stream)

        assert b_stats.accesses == s_stats.accesses
        assert b_stats.hits == s_stats.hits
        assert b_stats.misses == s_stats.misses
        assert b_stats.evictions == s_stats.evictions
        assert np.array_equal(batch._tags, scalar._tags)
        assert np.array_equal(batch._age, scalar._age)


def test_batch_replay_bitwise_on_fig6_thrashing_stream():
    """The Fig. 6 hazard — 5 way-aligned arrays in a 4-way cache — is
    the pathological all-miss case for the lockstep replay rounds."""
    cache = LDCache()
    stream = loop_access_stream(
        [i * cache.way_bytes for i in range(5)], 2000
    )
    scalar, batch = LDCache(), LDCache()
    s_stats = scalar.run(stream)
    b_stats = batch.run_batch(stream)
    assert (b_stats.accesses, b_stats.hits, b_stats.evictions) == \
        (s_stats.accesses, s_stats.hits, s_stats.evictions)
    assert np.array_equal(batch._tags, scalar._tags)
    assert np.array_equal(batch._age, scalar._age)
    # The five cyclically accessed way-aligned arrays must thrash.
    assert s_stats.hit_ratio < 0.05


def test_batch_replay_accumulates_across_calls():
    """Stats accumulate over successive run_batch calls exactly as the
    scalar path accumulates over successive run calls."""
    rng = np.random.default_rng(7)
    scalar, batch = LDCache(), LDCache()
    for _ in range(3):
        stream = rng.integers(0, 1 << 18, size=500)
        scalar.run(stream)
        batch.run_batch(stream)
    assert batch.stats.hits == scalar.stats.hits
    assert batch.stats.evictions == scalar.stats.evictions
    assert np.array_equal(batch._tags, scalar._tags)


def test_batch_replay_empty_stream_is_noop():
    cache = LDCache()
    stats = cache.run_batch(np.array([], dtype=np.int64))
    assert stats.accesses == 0
    assert cache.occupancy() == 0


def test_loop_access_stream_returns_int64_ndarray():
    stream = loop_access_stream([0, 1000], 3)
    assert isinstance(stream, np.ndarray)
    assert stream.dtype == np.int64


def test_loop_access_stream_matches_manual_interleave():
    stream = loop_access_stream([0, 1000], 3, elem_bytes=8)
    assert stream.tolist() == [0, 1000, 8, 1008, 16, 1016]
    blocked = loop_access_stream([0, 1000], 3, elem_bytes=8, interleave=False)
    assert blocked.tolist() == [0, 8, 16, 1000, 1008, 1016]
