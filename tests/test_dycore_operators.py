"""Mimetic/consistency tests of the C-grid operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dycore import operators as ops
from repro.grid.mesh import build_mesh


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def mesh2():
    return build_mesh(2)


class TestDivergence:
    def test_conservation_exact(self, mesh):
        """Area-weighted divergence integrates to zero (FV telescoping)."""
        rng = np.random.default_rng(0)
        flux = rng.normal(size=(mesh.ne, 4))
        div = ops.divergence(mesh, flux)
        total = (div * mesh.cell_area[:, None]).sum(axis=0)
        np.testing.assert_allclose(total, 0.0, atol=1e-6 * mesh.cell_area.mean())

    def test_zero_flux(self, mesh):
        div = ops.divergence(mesh, np.zeros(mesh.ne))
        np.testing.assert_array_equal(div, 0.0)

    def test_solid_body_flow_nearly_divergence_free(self, mesh):
        """u = Omega x r projected on normals has ~zero divergence."""
        axis = np.array([0.0, 0.0, 1.0])
        vel = np.cross(axis, mesh.edge_xyz)
        un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
        div = ops.divergence(mesh, un)
        scale = np.abs(un).max() / mesh.de.mean()
        assert np.abs(div).max() < 5e-3 * scale

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=10, deadline=None)
    def test_property_conservation_random(self, seed):
        mesh = build_mesh(2)
        rng = np.random.default_rng(seed)
        flux = rng.normal(size=mesh.ne) * rng.lognormal(size=mesh.ne)
        div = ops.divergence(mesh, flux)
        total = (div * mesh.cell_area).sum()
        assert abs(total) < 1e-5 * np.abs(div * mesh.cell_area).sum() + 1e-12


class TestGradient:
    def test_constant_field_zero_gradient(self, mesh):
        g = ops.gradient(mesh, np.full(mesh.nc, 7.5))
        np.testing.assert_allclose(g, 0.0, atol=1e-18)

    def test_antisymmetric_in_cells(self, mesh):
        """grad(psi) = -grad(-psi)."""
        rng = np.random.default_rng(1)
        psi = rng.normal(size=mesh.nc)
        np.testing.assert_allclose(
            ops.gradient(mesh, psi), -ops.gradient(mesh, -psi)
        )

    def test_linear_field_accuracy(self, mesh):
        """gradient of z-coordinate ~ cos(lat) in the north direction."""
        psi = mesh.cell_xyz[:, 2] * mesh.radius
        g = ops.gradient(mesh, psi)
        north = np.cross(mesh.edge_xyz, np.cross([0, 0, 1.0], mesh.edge_xyz))
        north /= np.maximum(np.linalg.norm(north, axis=1, keepdims=True), 1e-12)
        expected = np.cos(mesh.edge_lat) * np.einsum(
            "ej,ej->e", north, mesh.edge_normal
        )
        err = np.abs(g - expected).max()
        assert err < 0.02

    def test_adjointness_div_grad(self, mesh):
        """<div F, psi>_c = -<F, grad psi>_e up to the staggering metric.

        With our metric (le for div, de for grad) this holds exactly when
        weighting the edge inner product by le*de.
        """
        rng = np.random.default_rng(2)
        F = rng.normal(size=mesh.ne)
        psi = rng.normal(size=mesh.nc)
        lhs = (ops.divergence(mesh, F) * psi * mesh.cell_area).sum()
        rhs = -(F * ops.gradient(mesh, psi) * mesh.le * mesh.de).sum()
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestCurl:
    def test_curl_of_gradient_zero(self, mesh):
        """The discrete circulation of a gradient field vanishes exactly."""
        rng = np.random.default_rng(3)
        psi = rng.normal(size=mesh.nc)
        g = ops.gradient(mesh, psi)
        # The circulation uses the normal component along dual edges; the
        # gradient is exactly the dual-edge derivative, so the loop sum
        # telescopes to zero.
        zeta = ops.curl(mesh, g)
        scale = np.abs(g).max() / mesh.de.mean()
        np.testing.assert_allclose(zeta, 0.0, atol=1e-10 * scale)

    def test_solid_body_vorticity(self, mesh):
        """u = Omega x r has vorticity 2*Omega*sin(lat)."""
        omega = 1e-4
        axis = np.array([0.0, 0.0, omega])
        vel = np.cross(axis, mesh.edge_xyz) * mesh.radius
        un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
        zeta = ops.curl(mesh, un)
        expected = 2.0 * omega * np.sin(mesh.vertex_lat)
        err = np.abs(zeta - expected).max() / (2 * omega)
        assert err < 0.05

    def test_global_circulation_zero(self, mesh):
        """Area-weighted vorticity sums to zero on the closed sphere."""
        rng = np.random.default_rng(4)
        un = rng.normal(size=mesh.ne)
        zeta = ops.curl(mesh, un)
        total = (zeta * mesh.vertex_area).sum()
        assert abs(total) < 1e-6 * np.abs(zeta * mesh.vertex_area).sum() + 1e-12


class TestAverages:
    def test_cell_to_edge_of_constant(self, mesh):
        e = ops.cell_to_edge(mesh, np.full(mesh.nc, 3.0))
        np.testing.assert_allclose(e, 3.0)

    def test_upwind_picks_correct_side(self, mesh):
        psi = np.arange(mesh.nc, dtype=float)
        up_pos = ops.cell_to_edge_upwind(mesh, psi, np.ones(mesh.ne))
        up_neg = ops.cell_to_edge_upwind(mesh, psi, -np.ones(mesh.ne))
        np.testing.assert_array_equal(up_pos, psi[mesh.edge_cells[:, 0]])
        np.testing.assert_array_equal(up_neg, psi[mesh.edge_cells[:, 1]])

    def test_vertex_to_cell_constant(self, mesh):
        c = ops.vertex_to_cell(mesh, np.full(mesh.nv, 2.0))
        np.testing.assert_allclose(c, 2.0)

    def test_vertex_to_edge_constant(self, mesh):
        e = ops.vertex_to_edge(mesh, np.full(mesh.nv, -1.5))
        np.testing.assert_allclose(e, -1.5)


class TestKineticEnergyAndTangential:
    def test_ke_nonnegative(self, mesh):
        rng = np.random.default_rng(5)
        u = rng.normal(size=(mesh.ne, 3))
        ke = ops.kinetic_energy(mesh, u)
        assert np.all(ke >= 0.0)

    def test_ke_of_uniform_flow(self, mesh):
        U0 = np.array([5.0, 0.0, 0.0])
        un = mesh.edge_normal @ U0
        ke = ops.kinetic_energy(mesh, un)
        # |U_tangent|^2/2 at each cell: U0 minus radial part.
        tang = U0 - (mesh.cell_xyz @ U0)[:, None] * mesh.cell_xyz
        expected = 0.5 * np.einsum("ni,ni->n", tang, tang)
        err = np.abs(ke - expected).max() / expected.max()
        assert err < 0.1

    def test_tangential_of_solid_body(self, mesh):
        """For solid-body rotation the full vector is recovered: the
        tangential component at each edge matches the analytic value."""
        axis = np.array([0.0, 0.0, 1.0])
        vel = np.cross(axis, mesh.edge_xyz)
        un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
        vt_exact = np.einsum("ej,ej->e", vel, mesh.edge_tangent)
        vt = ops.tangential_velocity(mesh, un)
        err = np.abs(vt - vt_exact).max() / np.abs(vel).max()
        assert err < 0.06

    def test_multilevel_shapes(self, mesh):
        rng = np.random.default_rng(6)
        u = rng.normal(size=(mesh.ne, 5))
        assert ops.kinetic_energy(mesh, u).shape == (mesh.nc, 5)
        assert ops.tangential_velocity(mesh, u).shape == (mesh.ne, 5)
        assert ops.reconstruct_cell_vectors(mesh, u).shape == (mesh.nc, 3, 5)


class TestLaplacians:
    def test_laplacian_cell_constant_zero(self, mesh):
        lap = ops.laplacian_cell(mesh, np.full(mesh.nc, 4.0))
        np.testing.assert_allclose(lap, 0.0, atol=1e-18)

    def test_laplacian_cell_damps_extrema(self, mesh):
        """At a strict local max the Laplacian is negative."""
        psi = np.zeros(mesh.nc)
        psi[100] = 1.0
        lap = ops.laplacian_cell(mesh, psi)
        assert lap[100] < 0
        nbrs = mesh.cell_neighbors[100]
        assert np.all(lap[nbrs[nbrs >= 0]] > 0)

    def test_laplacian_edge_of_uniform_flow_small(self, mesh):
        U0 = np.array([3.0, -1.0, 2.0])
        un = mesh.edge_normal @ U0
        lap = ops.laplacian_edge(mesh, un)
        # A uniform (rigid) flow has small diffusion relative to u/de^2.
        scale = np.abs(un).max() / mesh.de.mean() ** 2
        assert np.abs(lap).max() < 0.1 * scale


class TestOperatorCache:
    """The per-mesh index/weight cache: built once, bitwise-neutral."""

    def test_cache_built_once_per_mesh(self):
        mesh = build_mesh(2)
        c1 = ops.mesh_ops(mesh)
        rng = np.random.default_rng(0)
        ops.divergence(mesh, rng.normal(size=mesh.ne))
        ops.curl(mesh, rng.normal(size=mesh.ne))
        assert ops.mesh_ops(mesh) is c1

    def test_cached_weights_match_definitions(self, mesh):
        from repro.grid.mesh import PAD

        c = ops.mesh_ops(mesh)
        le = np.where(
            mesh.cell_edges >= 0,
            mesh.le[np.clip(mesh.cell_edges, 0, None)], 0.0,
        )
        np.testing.assert_array_equal(c.div_w, mesh.cell_edge_sign * le)
        np.testing.assert_array_equal(c.cell_edges_pad, mesh.cell_edges == PAD)
        de = np.where(
            mesh.vertex_edges >= 0,
            mesh.de[np.clip(mesh.vertex_edges, 0, None)], 0.0,
        )
        np.testing.assert_array_equal(c.curl_w, mesh.vertex_edge_sign * de)
        # The pad-annihilating gather weight is 1 on valid lanes, 0 on PAD.
        np.testing.assert_array_equal(
            c.edge_gather_w, (mesh.cell_edges >= 0).astype(np.float64)
        )
        assert c.edge_gather_w.dtype == np.float64

    def test_vertex_to_cell_dtype_preserved(self, mesh):
        rng = np.random.default_rng(1)
        v32 = rng.normal(size=(mesh.nv, 3)).astype(np.float32)
        out = ops.vertex_to_cell(mesh, v32)
        assert out.dtype == np.float32
        out64 = ops.vertex_to_cell(mesh, v32.astype(np.float64))
        np.testing.assert_allclose(out, out64, rtol=1e-5, atol=1e-6)
