"""Tests of the model assembly: Table 2/3 configs, the coupling
interface, and the assembled GristModel."""

import numpy as np
import pytest

from repro.dycore.state import solid_body_rotation_state, tropical_profile_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.model.config import (
    TABLE2_GRIDS,
    TABLE3_SCHEMES,
    scaled_grid_config,
)
from repro.model.coupler import CouplingInterface
from repro.model.grist import GristModel


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(2)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.stretched(8)


class TestTable2:
    def test_all_rows_present(self):
        assert set(TABLE2_GRIDS) == {"G12", "G11W", "G11S", "G10", "G9", "G8", "G6"}

    def test_g12_row(self):
        g = TABLE2_GRIDS["G12"]
        assert g.level == 12
        assert g.nlev == 30
        assert (g.dt_dyn, g.dt_tracer, g.dt_physics, g.dt_radiation) == (
            4.0, 30.0, 60.0, 180.0
        )
        assert g.cells == 167_772_162
        assert g.edges == 503_316_480
        assert g.vertices == 335_544_320

    def test_g11_strong_vs_weak_timesteps(self):
        """G11W shares G12's timestep; G11S doubles everything."""
        w, s = TABLE2_GRIDS["G11W"], TABLE2_GRIDS["G11S"]
        assert w.cells == s.cells == 41_943_042
        assert s.dt_dyn == 2 * w.dt_dyn
        assert s.dt_radiation == 2 * w.dt_radiation

    def test_timestep_ratios(self):
        g = TABLE2_GRIDS["G12"]
        assert g.tracer_ratio == 8          # 30/4 rounded
        assert g.physics_ratio == 15
        assert g.radiation_ratio == 3

    def test_g6_resolution_column(self):
        lo, hi = TABLE2_GRIDS["G6"].resolution_km
        assert 85 < lo < 100 and 105 < hi < 120   # "92.5~113"

    def test_scaled_config_cfl(self):
        """Laptop configs keep the gravity-wave Courant number ~0.2."""
        from repro.grid.icosahedral import grid_mean_spacing_km

        for level in (2, 3, 4):
            cfg = scaled_grid_config(level)
            dx = grid_mean_spacing_km(level) * 1000.0
            assert 0.15 < cfg.dt_dyn * 340.0 / dx < 0.25


class TestTable3:
    def test_all_four_schemes(self):
        assert set(TABLE3_SCHEMES) == {"DP-PHY", "DP-ML", "MIX-PHY", "MIX-ML"}

    def test_scheme_flags(self):
        assert not TABLE3_SCHEMES["DP-PHY"].mixed_precision
        assert not TABLE3_SCHEMES["DP-PHY"].ml_physics
        assert TABLE3_SCHEMES["MIX-ML"].mixed_precision
        assert TABLE3_SCHEMES["MIX-ML"].ml_physics
        assert TABLE3_SCHEMES["MIX-PHY"].mixed_precision
        assert not TABLE3_SCHEMES["MIX-PHY"].ml_physics


class TestCouplingInterface:
    def test_extract_field_set(self, mesh, vc):
        """Section 3.2.4's variable list: U, V, T, Q, P, tskin, coszr."""
        st = solid_body_rotation_state(mesh, vc)
        coupler = CouplingInterface(mesh)
        f = coupler.extract(st, np.full(mesh.nc, 290.0), np.zeros(mesh.nc))
        for name in ("u", "v", "t", "q", "p", "tskin", "coszr"):
            assert hasattr(f, name)
        assert f.u.shape == (mesh.nc, vc.nlev)
        assert f.t.shape == (mesh.nc, vc.nlev)
        assert f.tskin.shape == (mesh.nc,)

    def test_extract_zonal_wind(self, mesh, vc):
        """Solid-body rotation: u ~ u0 cos(lat), v ~ 0."""
        st = solid_body_rotation_state(mesh, vc, u0=20.0)
        coupler = CouplingInterface(mesh)
        f = coupler.extract(st, np.full(mesh.nc, 290.0), np.zeros(mesh.nc))
        expected = 20.0 * np.cos(mesh.cell_lat)
        err = np.abs(f.u[:, 0] - expected).max() / 20.0
        assert err < 0.15
        assert np.abs(f.v).max() < 4.0

    def test_apply_tendencies_updates_state(self, mesh, vc):
        st = tropical_profile_state(mesh, vc)
        coupler = CouplingInterface(mesh)
        theta0 = st.theta.copy()
        qv0 = st.tracers["qv"].copy()
        dtheta = np.full_like(st.theta, 1e-4)
        dqv = np.full_like(qv0, -1e-7)
        coupler.apply_tendencies(
            st, dtheta, dqv, None, None, np.zeros(mesh.nc), 600.0
        )
        np.testing.assert_allclose(st.theta - theta0, 0.06)
        assert np.all(st.tracers["qv"] <= qv0)
        assert st.tracers["qv"].min() >= 0.0

    def test_surface_drag_slows_lowest_layers(self, mesh, vc):
        st = solid_body_rotation_state(mesh, vc)
        coupler = CouplingInterface(mesh)
        u0 = st.u.copy()
        drag = np.full(mesh.nc, 0.05)
        coupler.apply_tendencies(
            st, np.zeros_like(st.theta), np.zeros_like(st.theta),
            None, None, drag, 600.0,
        )
        # Lowest layer damped, top untouched.
        assert np.all(np.abs(st.u[:, -1]) <= np.abs(u0[:, -1]) + 1e-12)
        np.testing.assert_array_equal(st.u[:, 0], u0[:, 0])
        assert np.abs(st.u[:, -1]).max() < np.abs(u0[:, -1]).max()


class TestGristModel:
    def test_conventional_coupled_run(self, mesh, vc):
        cfg = scaled_grid_config(2, vc.nlev)
        model = GristModel(mesh, vc, cfg, TABLE3_SCHEMES["DP-PHY"])
        st = tropical_profile_state(mesh, vc)
        st = model.run_hours(st, 8.0)
        assert np.isfinite(st.theta).all()
        assert len(model.history.precip) >= 1
        assert model.history.mean_precip().min() >= 0.0

    def test_mixed_precision_scheme_sets_policy(self, mesh, vc):
        cfg = scaled_grid_config(2, vc.nlev)
        model = GristModel(mesh, vc, cfg, TABLE3_SCHEMES["MIX-PHY"])
        assert model.dycore.config.policy.mixed
        model_dp = GristModel(mesh, vc, cfg, TABLE3_SCHEMES["DP-PHY"])
        assert not model_dp.dycore.config.policy.mixed

    def test_ml_scheme_requires_suite(self, mesh, vc):
        cfg = scaled_grid_config(2, vc.nlev)
        with pytest.raises(ValueError):
            GristModel(mesh, vc, cfg, TABLE3_SCHEMES["DP-ML"])

    def test_physics_cadence(self, mesh, vc):
        cfg = scaled_grid_config(2, vc.nlev)
        model = GristModel(mesh, vc, cfg, TABLE3_SCHEMES["DP-PHY"])
        st = tropical_profile_state(mesh, vc)
        n_steps = cfg.physics_ratio * 3
        model.run(st, n_steps)
        assert len(model.history.precip) == 3

    def test_history_records_diagnostics(self, mesh, vc):
        cfg = scaled_grid_config(2, vc.nlev)
        model = GristModel(mesh, vc, cfg, TABLE3_SCHEMES["DP-PHY"])
        st = tropical_profile_state(mesh, vc)
        model.run(st, cfg.physics_ratio)
        assert len(model.history.gsw) == 1
        assert len(model.history.tskin_mean) == 1
        assert 200.0 < model.history.tskin_mean[0] < 320.0
