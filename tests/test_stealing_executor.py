"""Work-stealing executor tests: deque protocol, scheduler accounting,
and lifecycle under mid-step worker death.

The hard requirement (satellite of the overlap work): ``close()`` after
an exception inside a tendency round must neither hang nor leak worker
processes — a poisoned round, a SIGKILLed worker, and an abandoned
in-flight interior round all have to reap cleanly.
"""

import contextlib
import multiprocessing as mp
import os
import signal

import numpy as np
import pytest

from repro.dycore.solver import DycoreConfig
from repro.dycore.state import baroclinic_wave_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.parallel.driver import DistributedDycore
from repro.parallel.executor import StealingRankExecutor, _StealDeques

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="StealingRankExecutor requires fork"
)


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.uniform(5)


def _driver(mesh, vc, workers=2, sponge=2):
    d = DistributedDycore(
        mesh, vc, DycoreConfig(dt=600.0, sponge_levels=sponge),
        nparts=4, workers=workers, overlap=True,
    )
    d.scatter(baroclinic_wave_state(mesh, vc))
    return d


@contextlib.contextmanager
def _deadline(seconds):
    """Turn a hang into a test failure instead of a stuck suite."""
    def _alarm(signum, frame):
        raise TimeoutError(f"operation exceeded {seconds}s deadline")

    old = signal.signal(signal.SIGALRM, _alarm)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


class TestStealDeques:
    def _deques(self, workers=2, capacity=4):
        return _StealDeques(workers, capacity, mp.get_context("fork"))

    def test_owner_pops_fifo_from_head(self):
        dq = self._deques()
        dq.reset([[3, 1, 2], [0]])
        assert [dq.pop_own(0) for _ in range(4)] == [3, 1, 2, -1]
        assert dq.pop_own(1) == 0
        assert dq.pop_own(1) == -1

    def test_thief_takes_from_victim_tail(self):
        dq = self._deques()
        dq.reset([[3, 1, 2], []])
        assert dq.steal(1) == 2          # victim's tail, not its head
        assert dq.pop_own(0) == 3        # owner's head is untouched
        assert dq.steal(1) == 1
        assert dq.pop_own(0) == -1
        assert dq.steal(1) == -1

    def test_steal_scans_past_empty_victims(self):
        dq = self._deques(workers=3)
        dq.reset([[], [], [7]])
        assert dq.steal(0) == 7
        assert dq.steal(0) == -1

    def test_reset_reuses_storage_between_rounds(self):
        dq = self._deques()
        dq.reset([[0, 1], [2, 3]])
        while dq.pop_own(0) >= 0:
            pass
        dq.reset([[1], [0]])
        assert dq.pop_own(0) == 1
        assert dq.pop_own(1) == 0
        assert dq.steal(0) == -1

    def test_every_task_claimed_exactly_once_under_mixed_claims(self):
        dq = self._deques(workers=2, capacity=8)
        dq.reset([[0, 1, 2, 3], [4, 5, 6, 7]])
        claimed = []
        # Interleave owner pops and steals until both deques drain.
        for claim in (
            lambda: dq.pop_own(0), lambda: dq.steal(1),
            lambda: dq.steal(0), lambda: dq.pop_own(1),
        ) * 4:
            r = claim()
            if r >= 0:
                claimed.append(r)
        assert sorted(claimed) == list(range(8))


class TestSchedulerAccounting:
    def test_every_rank_task_runs_exactly_once_per_round(self, mesh, vc):
        d = _driver(mesh, vc)
        ex = d._executor
        try:
            d.run(2)
            # Each round (interior, boundary, tend, sponge) must execute
            # exactly one task per rank, owned or stolen.
            assert ex.stats["rounds"] > 0
            assert ex.stats["tasks"] == ex.stats["rounds"] * 4
            assert 0 <= ex.stats["stolen"] <= ex.stats["tasks"]
        finally:
            d.close()

    def test_round_robin_deal_covers_all_ranks(self, mesh, vc):
        d = _driver(mesh, vc, workers=3)
        ex = d._executor
        try:
            dealt = sorted(r for deque in ex._deal for r in deque)
            assert dealt == [0, 1, 2, 3]
            assert all(len(q) >= 1 for q in ex._deal)
        finally:
            d.close()


class TestLifecycle:
    def test_close_is_idempotent_and_reaps(self, mesh, vc):
        d = _driver(mesh, vc)
        ex = d._executor
        d.run(1)
        with _deadline(30):
            d.close()
            d.close()
        assert ex.closed
        assert not any(p.is_alive() for p in ex._procs)

    def test_round_after_close_raises(self, mesh, vc):
        d = _driver(mesh, vc)
        d.close()
        with pytest.raises(RuntimeError, match="closed"):
            d._executor.compute_tendencies()

    def test_finish_without_begin_raises(self, mesh, vc):
        d = _driver(mesh, vc)
        try:
            with pytest.raises(RuntimeError, match="no interior round"):
                d._executor.finish_interior()
        finally:
            d.close()

    def test_double_begin_raises(self, mesh, vc):
        d = _driver(mesh, vc)
        ex = d._executor
        try:
            ex.begin_interior()
            with pytest.raises(RuntimeError, match="already in flight"):
                ex.begin_interior()
            ex.finish_interior()
        finally:
            d.close()

    def test_close_drains_abandoned_inflight_round(self, mesh, vc):
        """begin_interior with no finish (the path an exception in the
        overlapped exchange would leave behind) must still close."""
        d = _driver(mesh, vc)
        ex = d._executor
        ex.begin_interior()
        with _deadline(30):
            d.close()
        assert ex.closed
        assert ex._open_span is None
        assert not any(p.is_alive() for p in ex._procs)

    def test_gc_finalizer_reaps_without_explicit_close(self, mesh, vc):
        import gc
        import weakref

        d = _driver(mesh, vc)
        procs = list(d._executor._procs)
        ref = weakref.ref(d._executor)
        d._executor = None
        d._arena = None
        with _deadline(30):
            gc.collect()
        assert ref() is None
        assert not any(p.is_alive() for p in procs)


class TestMidStepWorkerDeath:
    def test_exception_in_tendency_round_surfaces_and_close_is_clean(
        self, mesh, vc
    ):
        """A worker that raises inside a round reports the error, the
        next collect raises, and close() neither hangs nor leaks."""
        d = _driver(mesh, vc)
        ex = d._executor
        d.run(1)                      # healthy first, slots warm
        # Poison one round: slot 99 is out of range, so every worker's
        # task body raises IndexError and the worker loop exits after
        # reporting it.
        ex._deques.reset(ex._deal)
        ex._dead_at_post = {}
        for conn in ex._conns:
            conn.send(("round", "tend", 99))
        with _deadline(30):
            with pytest.raises(RuntimeError, match="rank worker failed"):
                ex._collect()
            d.close()
        assert ex.closed
        assert not any(p.is_alive() for p in ex._procs)

    def test_sigkilled_worker_fails_next_round_and_close_is_clean(
        self, mesh, vc
    ):
        d = _driver(mesh, vc)
        ex = d._executor
        d.run(1)
        ex._procs[0].kill()
        ex._procs[0].join(10)
        with _deadline(60):
            with pytest.raises(RuntimeError, match="rank worker failed"):
                d.step()
            d.close()
        assert ex.closed
        assert not any(p.is_alive() for p in ex._procs)

    def test_worker_dead_before_interior_post_surfaces_at_finish(
        self, mesh, vc
    ):
        """Death detected at post time (send fails) must not be lost:
        finish_interior raises and the span is not left open."""
        d = _driver(mesh, vc)
        ex = d._executor
        d.run(1)
        ex._procs[1].kill()
        ex._procs[1].join(10)
        with _deadline(60):
            ex.begin_interior()
            with pytest.raises(RuntimeError, match="rank worker failed"):
                ex.finish_interior()
            assert ex._open_span is None
            d.close()
        assert ex.closed
        assert not any(p.is_alive() for p in ex._procs)

    def test_driver_overlap_step_after_worker_death_raises_once(
        self, mesh, vc
    ):
        """The overlapped step path (begin -> exchange -> finish) must
        propagate a worker death as RuntimeError, not deadlock."""
        d = _driver(mesh, vc)
        ex = d._executor
        d.run(1)
        before = d.gather()
        for p in ex._procs:
            p.kill()
            p.join(10)
        with _deadline(60):
            with pytest.raises(RuntimeError, match="rank worker failed"):
                d.step()
            d.close()
        # Prognostic state is still readable after the failed step.
        after = d.gather()
        assert all(np.all(np.isfinite(f)) for f in after)
        assert len(before) == len(after)


class TestDropInLockstepAPI:
    def test_stealing_executor_serves_plain_rounds_bitwise(self, mesh, vc):
        """Without a split, the stealing executor is a drop-in for the
        lockstep one: same tend/sponge rounds, same bits."""
        cfg = DycoreConfig(dt=600.0, sponge_levels=2)
        serial = DistributedDycore(mesh, vc, cfg, nparts=4)
        serial.scatter(baroclinic_wave_state(mesh, vc))
        serial.run(2)
        want = serial.gather()
        serial.close()

        d = DistributedDycore(
            mesh, vc, cfg, nparts=4, workers=2, overlap=True,
        )
        d.scatter(baroclinic_wave_state(mesh, vc))
        ex = d._executor
        assert isinstance(ex, StealingRankExecutor)
        try:
            # Drive the lockstep-compatible API directly.
            d.overlap = False
            d.run(2)
            got = d.gather()
        finally:
            d.close()
        for a, b in zip(want, got):
            assert np.array_equal(a, b)
