"""Tests of the predicted-vs-traced reconciliation and `repro profile`."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.dycore.kernels import MAJOR_KERNELS
from repro.obs import SpanKind, Tracer
from repro.perf.metrics import sdpd_from_trace
from repro.perf.reconcile import reconcile_kernels, run_profile
from repro.sunway.kernel import Precision


class TestReconcileKernels:
    @pytest.fixture(scope="class")
    def recon(self, mesh_g2):
        return reconcile_kernels(mesh_g2, nlev=6)

    def test_every_major_kernel_reconciled(self, recon):
        assert [r.kernel for r in recon] == list(MAJOR_KERNELS)

    def test_traced_close_to_predicted(self, recon):
        """Static chunking only quantises, it doesn't change the total:
        the per-kernel relative error stays small but is allowed to be
        nonzero (ceil(n / n_cpes) lane imbalance)."""
        for r in recon:
            assert r.predicted_seconds > 0.0
            assert r.traced_seconds > 0.0
            assert r.relative_error < 0.05, r.kernel

    def test_elements_match_mesh(self, recon, mesh_g2):
        by_name = {r.kernel: r for r in recon}
        for name, reg in MAJOR_KERNELS.items():
            n = (mesh_g2.ne if reg.element == "edge" else mesh_g2.nc) * 6
            assert by_name[name].elements == n

    def test_to_dict_round_trips_json(self, recon):
        doc = json.dumps([r.to_dict() for r in recon])
        assert all(row["kernel"] in MAJOR_KERNELS for row in json.loads(doc))

    def test_dp_precision_costs_more(self, mesh_g2):
        mixed = {r.kernel: r.predicted_seconds
                 for r in reconcile_kernels(mesh_g2, nlev=6)}
        dp = {r.kernel: r.predicted_seconds
              for r in reconcile_kernels(mesh_g2, nlev=6, precision=Precision.DP)}
        assert all(dp[k] >= mixed[k] for k in mixed)

    def test_uses_supplied_tracer(self, mesh_g2):
        t = Tracer()
        reconcile_kernels(mesh_g2, nlev=4, tracer=t)
        kinds = {s.kind for s in t.events}
        assert SpanKind.KERNEL_LAUNCH in kinds
        assert SpanKind.CHUNK in kinds


class TestRunProfile:
    @pytest.fixture(scope="class")
    def profile(self):
        return run_profile(level=2, nlev=6, steps=2, compare_model=True)

    def test_config_and_spans(self, profile):
        assert profile["config"]["steps"] == 2
        assert profile["n_spans"] == len(profile["tracer"].events) > 0

    def test_aggregate_covers_dycore(self, profile):
        assert "dyn_step:dycore.step" in profile["aggregate"]
        assert profile["aggregate"]["dyn_step:dycore.step"]["count"] == 2

    def test_metrics_snapshot(self, profile):
        assert profile["metrics"]["counters"]["dycore.steps"] == 2.0

    def test_reconciliation_table_complete(self, profile):
        assert {r["kernel"] for r in profile["reconciliation"]} == set(MAJOR_KERNELS)
        assert profile["max_relative_error"] < 0.05

    def test_default_steps_is_tracer_ratio(self):
        prof = run_profile(level=2, nlev=4)
        assert prof["config"]["steps"] == prof["config"]["tracer_ratio"]
        seq = prof["tracer"].span_sequence(kinds={SpanKind.TRACER_STEP})
        assert seq == [("tracer_step", "dycore.tracer_step")]

    def test_sdpd_from_trace(self, profile):
        sdpd = sdpd_from_trace(profile["tracer"], profile["config"]["dt_dyn"])
        assert sdpd > 0.0

    def test_sdpd_from_trace_rejects_empty(self):
        with pytest.raises(ValueError):
            sdpd_from_trace(Tracer(), 600.0)

    def test_global_instrumentation_restored(self, profile):
        from repro.obs import get_metrics, get_tracer

        assert get_tracer().enabled is False
        assert get_metrics().enabled is False


class TestProfileCLI:
    def test_human_output(self, capsys):
        assert main(["profile", "--level", "2", "--nlev", "4",
                     "--steps", "2", "--compare-model"]) == 0
        out = capsys.readouterr().out
        assert "span (kind:name)" in out
        for name in MAJOR_KERNELS:
            assert name in out
        assert "max relative error" in out

    def test_json_output(self, capsys):
        assert main(["profile", "--level", "2", "--nlev", "4",
                     "--steps", "2", "--json", "--compare-model"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert {r["kernel"] for r in doc["reconciliation"]} == set(MAJOR_KERNELS)
        assert doc["sdpd_traced"] > 0.0
        assert doc["metrics"]["counters"]["dycore.steps"] == 2.0

    def test_trace_out_is_loadable_chrome_json(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["profile", "--level", "2", "--nlev", "4", "--steps", "1",
                     "--trace-out", str(path)]) == 0
        doc = json.load(open(path))
        assert doc["displayTimeUnit"] == "ms"
        names = {e["name"] for e in doc["traceEvents"]}
        assert "dycore.step" in names
        assert all(
            {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(e)
            for e in doc["traceEvents"]
        )

    def test_max_error_gate_fails(self, capsys):
        rc = main(["profile", "--level", "2", "--nlev", "4", "--steps", "1",
                   "--compare-model", "--max-error", "0"])
        assert rc == 1

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["profile"])
        assert args.level == 3 and args.nlev == 8
        assert args.steps is None and not args.compare_model


def test_profile_run_does_not_perturb_state(mesh_g2):
    """Acceptance: tracer-disabled vs tracer-enabled runs of the same
    seeded integration produce bit-identical fields."""
    from repro.dycore.solver import DycoreConfig, DynamicalCore
    from repro.dycore.state import tropical_profile_state
    from repro.dycore.vertical import VerticalCoordinate
    from repro.obs import tracing

    vc = VerticalCoordinate.stretched(6)

    def integrate(traced: bool):
        dycore = DynamicalCore(mesh_g2, vc, DycoreConfig(dt=600.0))
        st = tropical_profile_state(mesh_g2, vc)
        if traced:
            with tracing():
                for _ in range(3):
                    st = dycore.step(st)
        else:
            for _ in range(3):
                st = dycore.step(st)
        return st

    a, b = integrate(False), integrate(True)
    assert np.array_equal(a.ps, b.ps)
    assert np.array_equal(a.theta, b.theta)
