"""Tests of the runtime sanitizer: shadow arrays, chunk observation
through the real job server, and static-verdict verification."""

import numpy as np
import pytest

from repro.analysis.access import AccessSpec, ArrayAccess, OffloadPlan, PlannedLoop
from repro.analysis.corpus import KNOWN_BAD_CORPUS
from repro.analysis.diagnostics import CONFIRMED, FALSE_POSITIVE
from repro.analysis.sanitizer import Sanitizer, ShadowArray, _Recorder
from repro.analysis.static import analyze_plan
from repro.sunway.arch import CoreGroup
from repro.sunway.swgomp import JobServer, SWGOMPError, TargetRegion


class TestShadowArray:
    def _shadow(self, n=16):
        rec = _Recorder()
        rec.begin_chunk(cpe=0, start=0, end=n)
        return ShadowArray("x", np.arange(n, dtype=float), rec), rec

    def test_records_slice_read(self):
        sh, rec = self._shadow()
        _ = sh[2:5]
        assert rec._current.reads["x"] == {2, 3, 4}

    def test_records_scalar_and_negative_index(self):
        sh, rec = self._shadow(8)
        _ = sh[3]
        _ = sh[-1]
        assert rec._current.reads["x"] == {3, 7}

    def test_records_fancy_index_write(self):
        sh, rec = self._shadow()
        sh[np.array([1, 5, 5])] = 0.0
        assert rec._current.writes["x"] == {1, 5}

    def test_records_first_axis_of_tuple_key(self):
        rec = _Recorder()
        rec.begin_chunk(0, 0, 4)
        sh = ShadowArray("m", np.zeros((4, 3)), rec)
        sh[1, 2] = 9.0
        assert rec._current.writes["m"] == {1}

    def test_data_passthrough_values(self):
        sh, _ = self._shadow(4)
        np.testing.assert_allclose(sh[1:3], [1.0, 2.0])
        sh[0] = 7.0
        assert sh.data[0] == 7.0

    def test_no_recording_outside_chunk(self):
        sh, rec = self._shadow(4)
        rec.end_chunk(0, 0, 4)
        _ = sh[0]
        assert rec.chunks[0].reads == {}


class TestChunkObservers:
    def test_observer_sees_every_chunk(self):
        server = JobServer(CoreGroup(n_cpes=4))
        server.init_from_mpe()
        rec = _Recorder()
        server.chunk_observers.append(rec)
        TargetRegion(server).parallel_for(lambda s, e: None, 100)
        spans = sorted((c.start, c.end) for c in rec.chunks)
        assert spans[0][0] == 0
        assert spans[-1][1] == 100
        assert all(a[1] == b[0] for a, b in zip(spans, spans[1:]))

    def test_launch_before_init_raises_typed_error(self):
        cold = JobServer(CoreGroup(n_cpes=4))
        with pytest.raises(SWGOMPError):
            TargetRegion(cold)
        # Still a RuntimeError, so existing callers keep working.
        assert issubclass(SWGOMPError, RuntimeError)


def _disjoint_scatter_plan():
    """Statically suspect (write at nbr(i)) but dynamically disjoint:
    the neighbour table is the identity permutation."""
    n = 64
    arrays = {
        "idx": np.arange(n, dtype=np.int64),
        "out": np.zeros(n),
    }

    def body(a, s, e):
        targets = a["idx"][s:e]
        for j, t in enumerate(targets):
            a["out"][int(t)] = float(s + j)

    plan = OffloadPlan(
        name="disjoint_scatter",
        loops=[PlannedLoop(
            name="scatter",
            access=AccessSpec.of(
                ArrayAccess("idx", mode="r", index="i"),
                ArrayAccess("out", mode="w", index="nbr(i)"),
            ),
            n_iters=n,
            body=body,
        )],
    )
    return plan, arrays


class TestVerification:
    def test_seeded_race_is_confirmed(self):
        """The headline feedback loop: static SW001 -> observed race."""
        plan, arrays = KNOWN_BAD_CORPUS["racy_flux_accumulation"].build()
        diags = analyze_plan(plan)
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        sw001 = [d for d in diags if d.rule == "SW001"]
        assert len(sw001) == 1
        assert sw001[0].verdict == CONFIRMED
        assert sw001[0].details["observed_race_count"] > 0

    def test_disjoint_scatter_is_false_positive(self):
        plan, arrays = _disjoint_scatter_plan()
        diags = analyze_plan(plan)
        assert any(d.rule == "SW001" for d in diags)   # statically suspect
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        sw001 = [d for d in diags if d.rule == "SW001"]
        assert sw001[0].verdict == FALSE_POSITIVE
        assert sw001[0].details["observed_race_count"] == 0

    def test_race_execution_still_produces_results(self):
        plan, arrays = KNOWN_BAD_CORPUS["racy_flux_accumulation"].build()
        Sanitizer(n_cpes=8).run_plan(plan, arrays)
        # The simulated chunks run sequentially, so the accumulated
        # total is right even though the chunking is racy on hardware.
        assert arrays["mass_accum"].sum() == pytest.approx(
            arrays["flux"].sum()
        )

    def test_preinit_launch_confirmed(self):
        plan, arrays = KNOWN_BAD_CORPUS["preinit_launch"].build()
        diags = analyze_plan(plan)
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        sw003 = [d for d in diags if d.rule == "SW003"]
        assert sw003[0].verdict == CONFIRMED

    def test_demoted_pressure_gradient_confirmed(self):
        plan, arrays = KNOWN_BAD_CORPUS["demoted_pressure_gradient"].build()
        diags = analyze_plan(plan)
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        for d in diags:
            if d.rule == "SW006":
                assert d.verdict == CONFIRMED

    def test_fp64_sensitive_term_would_be_false_positive(self):
        """If the live array is actually float64 the demotion claim dies."""
        plan, arrays = KNOWN_BAD_CORPUS["demoted_pressure_gradient"].build()
        arrays = {k: v.astype(np.float64) for k, v in arrays.items()}
        diags = analyze_plan(plan)
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        assert all(
            d.verdict == FALSE_POSITIVE for d in diags if d.rule == "SW006"
        )

    def test_loop_without_body_stays_unverified(self):
        plan, arrays = KNOWN_BAD_CORPUS["halo_overreach"].build()
        diags = analyze_plan(plan)
        Sanitizer(n_cpes=8).verify(plan, arrays, diags)
        assert all(d.verdict is None for d in diags)

    def test_run_loop_requires_body(self):
        plan, arrays = KNOWN_BAD_CORPUS["halo_overreach"].build()
        with pytest.raises(ValueError, match="no runnable body"):
            Sanitizer(n_cpes=8).run_loop(plan.loops[0], arrays)

    def test_observer_removed_after_run(self):
        plan, arrays = _disjoint_scatter_plan()
        san = Sanitizer(n_cpes=8)
        san.run_plan(plan, arrays)
        assert san.server.chunk_observers == []

    def test_server_tracer_restored_after_run(self):
        """run_loop installs its listener tracer and always puts the
        server's previous tracer back, even if the loop body raises."""
        from repro.analysis.access import PlannedLoop
        from repro.obs import Tracer

        san = Sanitizer(n_cpes=8)
        mine = Tracer()
        san.server.tracer = mine
        plan, arrays = _disjoint_scatter_plan()
        san.run_loop(plan.loops[0], arrays)
        assert san.server.tracer is mine

        def exploding(shadows, s, e):
            raise RuntimeError("body blew up")

        bad = PlannedLoop(name="boom", access=plan.loops[0].access,
                          n_iters=16, body=exploding)
        with pytest.raises(RuntimeError, match="body blew up"):
            san.run_loop(bad, arrays)
        assert san.server.tracer is mine

    def test_recorder_consumes_chunk_trace_spans(self):
        """The sanitizer's bracketer works as a tracer listener: CHUNK
        spans drive begin/end, other kinds are ignored."""
        from repro.obs import SpanKind, Tracer

        rec = _Recorder()
        t = Tracer(record=False)
        t.add_listener(rec)
        with t.span("k", SpanKind.KERNEL_LAUNCH):       # ignored
            with t.span("k", SpanKind.CHUNK, cpe=2, start=0, end=8):
                rec.record_write("a", np.arange(3))
        assert len(rec.chunks) == 1
        log = rec.chunks[0]
        assert (log.cpe, log.start, log.end) == (2, 0, 8)
        assert log.writes["a"] == {0, 1, 2}
