"""Tests of the dynamic race sanitizer: vector-clock replay verdicts on
the known-racy corpus, and clean sanitizing of a real driver run."""

import os

import numpy as np
import pytest

from repro.analysis.race_corpus import KNOWN_RACY_PLANS
from repro.analysis.race_sanitizer import (
    RaceReplay,
    RaceSanitizer,
    RunObserver,
    _linear_sum,
    _tree_sum,
    sanitize_run,
)
from repro.analysis.races import analyze_parallel_plan, build_step_plan
from repro.dycore.solver import DycoreConfig
from repro.dycore.state import baroclinic_wave_state
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.parallel.driver import DistributedDycore


class TestSumHelpers:
    def test_tree_vs_linear_differ_on_catastrophic_cancellation(self):
        values = (1.0e16, 1.0, -1.0e16, 1.0)
        assert _linear_sum(values) != _tree_sum(values)

    def test_exact_values_sum_identically(self):
        values = (1.0, 2.0, 3.0, 4.0)
        assert _linear_sum(values) == _tree_sum(values) == 10.0

    def test_empty_tree_sum(self):
        assert _tree_sum(()) == 0.0


class TestReplayVerdicts:
    @pytest.mark.parametrize("name", sorted(KNOWN_RACY_PLANS))
    def test_every_corpus_case_gets_its_expected_verdict(self, name):
        """CONFIRMED cases must replay to the same (rule, ops, resource)
        event; FALSE_POSITIVE cases must be demoted."""
        case = KNOWN_RACY_PLANS[name]
        plan = case.build()
        diags = RaceSanitizer().verify(plan, analyze_parallel_plan(plan))
        expected = [d for d in diags if d.rule in case.expect_rules]
        assert expected, name
        assert all(d.verdict == case.expect_verdict for d in expected), [
            (d.rule, d.verdict) for d in expected
        ]

    def test_confirmed_event_identity_matches_static_details(self):
        plan = KNOWN_RACY_PLANS["aliased_tendency_slots"].build()
        events = RaceReplay(plan).run()
        keys = {(ev.rule, ev.ops, ev.resource) for ev in events}
        diags = analyze_parallel_plan(plan)
        assert any(
            (d.rule, frozenset(d.details["ops"]), d.details["resource"])
            in keys
            for d in diags if d.rule == "RD001"
        )

    def test_disjoint_observed_writes_produce_no_events(self):
        plan = KNOWN_RACY_PLANS["disjoint_observed_writes"].build()
        assert RaceReplay(plan).run() == []

    def test_replay_flags_wrong_epoch_drain_even_when_ordered(self):
        """The stateful RD003 check: a fully ordered schedule that still
        drains epoch-2 content from an epoch-1 unpack is a real bug the
        pairwise engine alone would miss."""
        from repro.analysis.parallel_plan import (
            DRIVER,
            Access,
            OpKind,
            ParallelPlan,
            PlanOp,
        )

        plan = ParallelPlan(name="wrong_epoch", ops=[
            PlanOp(name="e1.pack", kind=OpKind.PACK, lane=DRIVER, epoch=1,
                   accesses=[Access("buf", mode="w")]),
            PlanOp(name="e2.pack", kind=OpKind.PACK, lane=DRIVER, epoch=2,
                   accesses=[Access("buf", mode="w")]),
            PlanOp(name="e1.unpack", kind=OpKind.UNPACK, lane=DRIVER,
                   epoch=1, accesses=[Access("buf", mode="r")]),
        ])
        events = RaceReplay(plan).run()
        assert any(ev.rule == "RD003" for ev in events)

    def test_non_rd_diagnostics_pass_through_unverdicted(self):
        from repro.analysis.diagnostics import Diagnostic

        plan = KNOWN_RACY_PLANS["benign_reduction"].build()
        sw = Diagnostic(rule="SW001", message="unrelated")
        out = RaceSanitizer().verify(plan, [sw])
        assert out[0].verdict is None


needs_fork = pytest.mark.skipif(
    os.name != "posix", reason="ProcessRankExecutor requires fork"
)


class TestRealRunSanitize:
    @pytest.fixture(scope="class")
    def mesh(self):
        return build_mesh(2)

    @pytest.fixture(scope="class")
    def vc(self):
        return VerticalCoordinate.uniform(4)

    def _driver(self, mesh, vc, workers=1, sponge=0):
        cfg = DycoreConfig(dt=600.0, sponge_levels=sponge)
        d = DistributedDycore(mesh, vc, cfg, nparts=4, workers=workers)
        d.scatter(baroclinic_wave_state(mesh, vc))
        return d

    def test_unscattered_driver_rejected(self, mesh, vc):
        d = DistributedDycore(
            mesh, vc, DycoreConfig(dt=600.0), nparts=4, workers=1
        )
        with pytest.raises(RuntimeError, match="scatter"):
            sanitize_run(d)

    def test_serial_run_is_clean(self, mesh, vc):
        d = self._driver(mesh, vc)
        try:
            report = sanitize_run(d, steps=1)
        finally:
            d.close()
        assert report.clean
        assert report.plan.ops
        blob = report.to_dict()
        assert blob["clean"] is True and blob["events"] == []

    @needs_fork
    def test_workers2_run_is_clean(self, mesh, vc):
        """The CI acceptance gate: a chaos-free workers=2 run observed
        through the span stream replays with zero race events."""
        d = self._driver(mesh, vc, workers=2, sponge=2)
        try:
            report = sanitize_run(d, steps=2)
        finally:
            d.close()
        assert report.clean, report.to_dict()["events"]
        # The observed plan really covers the run: 2 steps x (save +
        # 3 stages + sponge), with the arena layout attached.
        saves = [op for op in report.plan.ops if op.name.startswith("save")]
        assert len(saves) == 2
        assert report.plan.arena
        assert report.plan.halo_recv

    def test_observed_plan_matches_declared_schedule_shape(self, mesh, vc):
        """The observer's reconstruction agrees with build_step_plan on
        the op-kind census of one step."""
        from collections import Counter

        d = self._driver(mesh, vc)
        try:
            declared = build_step_plan(d)
            report = sanitize_run(d, steps=1)
        finally:
            d.close()
        census = Counter(op.kind for op in declared.ops)
        observed = Counter(op.kind for op in report.plan.ops)
        assert observed == census

    def test_sanitize_restores_previous_tracer(self, mesh, vc):
        from repro.obs import get_tracer

        before = get_tracer()
        d = self._driver(mesh, vc)
        try:
            sanitize_run(d, steps=1)
        finally:
            d.close()
        assert get_tracer() is before

    @needs_fork
    def test_bitwise_equality_with_sanitizer_attached(self, mesh, vc):
        """Acceptance criterion: serial vs workers=2 stays bitwise equal
        when the run is observed and replayed by the sanitizer."""
        results = []
        for workers in (1, 2):
            d = self._driver(mesh, vc, workers=workers, sponge=2)
            try:
                report = sanitize_run(d, steps=3)
                assert report.clean
                results.append(d.gather())
            finally:
                d.close()
        for a, b in zip(*results):
            assert np.array_equal(a, b)

    def test_observer_ignores_unrelated_spans(self, mesh, vc):
        from repro.obs import SpanKind, Tracer, set_tracer

        d = self._driver(mesh, vc)
        observer = RunObserver(d)
        tracer = Tracer(enabled=True, record=False)
        tracer.add_listener(observer)
        prev = set_tracer(tracer)
        try:
            with tracer.span("unrelated", SpanKind.RK_STAGE, op="other"):
                pass
        finally:
            set_tracer(prev)
            d.close()
        assert observer.to_plan().ops == []
