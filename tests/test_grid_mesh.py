"""Tests of the hexagonal C-grid mesh: topology and geometry invariants."""

import math

import numpy as np
import pytest

from repro.grid.mesh import MAX_DEG, PAD, build_mesh


@pytest.fixture(scope="module", params=[1, 2, 3])
def mesh(request):
    return build_mesh(request.param)


class TestCounts:
    def test_closed_formulas(self, mesh):
        L = mesh.level
        assert mesh.nc == 10 * 4**L + 2
        assert mesh.ne == 30 * 4**L
        assert mesh.nv == 20 * 4**L

    def test_euler(self, mesh):
        assert mesh.euler_characteristic() == 2

    def test_degrees(self, mesh):
        counts = np.bincount(mesh.cell_ne, minlength=MAX_DEG + 1)
        assert counts[5] == 12                     # the 12 pentagons
        assert counts[6] == mesh.nc - 12
        assert counts[:5].sum() == 0


class TestGeometry:
    def test_cell_areas_tile_sphere(self, mesh):
        total = 4.0 * math.pi * mesh.radius**2
        assert mesh.cell_area.sum() == pytest.approx(total, rel=1e-10)

    def test_vertex_areas_tile_sphere(self, mesh):
        total = 4.0 * math.pi * mesh.radius**2
        assert mesh.vertex_area.sum() == pytest.approx(total, rel=1e-10)

    def test_all_areas_positive(self, mesh):
        assert np.all(mesh.cell_area > 0)
        assert np.all(mesh.vertex_area > 0)

    def test_edge_lengths_positive(self, mesh):
        assert np.all(mesh.de > 0)
        assert np.all(mesh.le > 0)

    def test_unit_vectors(self, mesh):
        for arr in (mesh.cell_xyz, mesh.vertex_xyz, mesh.edge_xyz):
            np.testing.assert_allclose(np.linalg.norm(arr, axis=1), 1.0, atol=1e-12)

    def test_normals_tangent_to_sphere(self, mesh):
        dots = np.einsum("ej,ej->e", mesh.edge_normal, mesh.edge_xyz)
        np.testing.assert_allclose(dots, 0.0, atol=1e-12)

    def test_normal_tangent_orthogonal(self, mesh):
        dots = np.einsum("ej,ej->e", mesh.edge_normal, mesh.edge_tangent)
        np.testing.assert_allclose(dots, 0.0, atol=1e-12)

    def test_right_handed_frame(self, mesh):
        """normal x tangent = outward radial."""
        cross = np.cross(mesh.edge_normal, mesh.edge_tangent)
        np.testing.assert_allclose(cross, mesh.edge_xyz, atol=1e-10)

    def test_normal_points_c1_to_c2(self, mesh):
        chord = mesh.cell_xyz[mesh.edge_cells[:, 1]] - mesh.cell_xyz[mesh.edge_cells[:, 0]]
        assert np.all(np.einsum("ej,ej->e", chord, mesh.edge_normal) > 0)

    def test_spacing_variation_moderate(self, mesh):
        ratio = mesh.de.max() / mesh.de.min()
        assert ratio < 1.35


class TestConnectivity:
    def test_edge_cells_distinct(self, mesh):
        assert np.all(mesh.edge_cells[:, 0] != mesh.edge_cells[:, 1])

    def test_edge_vertices_distinct(self, mesh):
        assert np.all(mesh.edge_vertices[:, 0] != mesh.edge_vertices[:, 1])

    def test_each_edge_in_exactly_two_cells(self, mesh):
        count = np.zeros(mesh.ne, dtype=int)
        valid = mesh.cell_edges != PAD
        np.add.at(count, mesh.cell_edges[valid], 1)
        assert np.all(count == 2)

    def test_edge_sign_antisymmetric(self, mesh):
        """Every edge gets +1 from one cell and -1 from the other."""
        s = np.zeros(mesh.ne)
        valid = mesh.cell_edges != PAD
        np.add.at(s, mesh.cell_edges[valid], mesh.cell_edge_sign[valid])
        np.testing.assert_allclose(s, 0.0)

    def test_sign_matches_ownership(self, mesh):
        """sign=+1 iff the cell is the edge's c1 (normal points out)."""
        for c in range(0, mesh.nc, max(1, mesh.nc // 50)):
            for k in range(mesh.cell_ne[c]):
                e = mesh.cell_edges[c, k]
                sign = mesh.cell_edge_sign[c, k]
                if mesh.edge_cells[e, 0] == c:
                    assert sign == 1.0
                else:
                    assert mesh.edge_cells[e, 1] == c
                    assert sign == -1.0

    def test_neighbors_consistent_with_edges(self, mesh):
        for c in range(0, mesh.nc, max(1, mesh.nc // 50)):
            for k in range(mesh.cell_ne[c]):
                e = mesh.cell_edges[c, k]
                nbr = mesh.cell_neighbors[c, k]
                assert set(mesh.edge_cells[e]) == {c, nbr}

    def test_each_vertex_in_three_cells(self, mesh):
        assert mesh.vertex_cells.shape == (mesh.nv, 3)
        # All distinct.
        assert np.all(mesh.vertex_cells[:, 0] != mesh.vertex_cells[:, 1])
        assert np.all(mesh.vertex_cells[:, 1] != mesh.vertex_cells[:, 2])
        assert np.all(mesh.vertex_cells[:, 0] != mesh.vertex_cells[:, 2])

    def test_vertex_edges_valid(self, mesh):
        assert np.all(mesh.vertex_edges != PAD)
        assert np.all(np.abs(mesh.vertex_edge_sign) == 1.0)

    def test_vertex_edges_touch_vertex(self, mesh):
        for v in range(0, mesh.nv, max(1, mesh.nv // 50)):
            for e in mesh.vertex_edges[v]:
                assert v in mesh.edge_vertices[e]

    def test_cell_vertices_are_incident(self, mesh):
        for c in range(0, mesh.nc, max(1, mesh.nc // 50)):
            deg = mesh.cell_ne[c]
            vs = mesh.cell_vertices[c, :deg]
            assert len(set(vs.tolist())) == deg
            for v in vs:
                assert c in mesh.vertex_cells[v]

    def test_padding_consistent(self, mesh):
        for c in range(0, mesh.nc, max(1, mesh.nc // 50)):
            deg = mesh.cell_ne[c]
            assert np.all(mesh.cell_edges[c, deg:] == PAD)
            assert np.all(mesh.cell_vertices[c, deg:] == PAD)
            assert np.all(mesh.cell_edge_sign[c, deg:] == 0.0)


class TestCoriolis:
    def test_f_range(self, mesh):
        from repro.constants import OMEGA

        for f in (mesh.f_cell, mesh.f_edge, mesh.f_vertex):
            assert np.all(np.abs(f) <= 2.0 * OMEGA + 1e-12)

    def test_f_sign_hemispheres(self, mesh):
        north = mesh.cell_lat > 0.1
        south = mesh.cell_lat < -0.1
        assert np.all(mesh.f_cell[north] > 0)
        assert np.all(mesh.f_cell[south] < 0)


class TestVelocityReconstruction:
    def test_uniform_field_recovered(self, mesh, rng=None):
        # Reconstruction is ~2nd order: tolerance tightens with level.
        tol = {1: 0.45, 2: 0.15, 3: 0.05}[mesh.level]
        rng = np.random.default_rng(7)
        for _ in range(3):
            U0 = rng.normal(size=3)
            ue = mesh.edge_normal @ U0
            gathered = np.where(
                mesh.cell_edges >= 0, ue[np.clip(mesh.cell_edges, 0, None)], 0.0
            )
            rec = np.einsum("nik,nk->ni", mesh.cell_recon, gathered)
            tangent_part = U0 - (mesh.cell_xyz @ U0)[:, None] * mesh.cell_xyz
            err = np.abs(rec - tangent_part).max() / (np.abs(tangent_part).max() + 1e-300)
            assert err < tol

    def test_reconstruction_tangent(self, mesh):
        rng = np.random.default_rng(3)
        ue = rng.normal(size=mesh.ne)
        gathered = np.where(
            mesh.cell_edges >= 0, ue[np.clip(mesh.cell_edges, 0, None)], 0.0
        )
        rec = np.einsum("nik,nk->ni", mesh.cell_recon, gathered)
        radial = np.einsum("ni,ni->n", rec, mesh.cell_xyz)
        np.testing.assert_allclose(radial, 0.0, atol=1e-8)
