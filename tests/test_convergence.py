"""Grid-convergence tests: discretisation errors must shrink with
resolution at roughly the advertised (second) order."""

import numpy as np
import pytest

from repro.dycore import operators as ops
from repro.grid.mesh import build_mesh


@pytest.fixture(scope="module")
def meshes():
    return [build_mesh(level) for level in (2, 3, 4)]


def _smooth_cell_field(mesh):
    """A smooth large-scale test function psi = x*y + z^2."""
    x, y, z = mesh.cell_xyz.T
    return x * y + z**2


def _gradient_exact(mesh):
    """Tangential gradient of psi at edge midpoints, dotted with normals."""
    x, y, z = mesh.edge_xyz.T
    grad3 = np.stack([y, x, 2.0 * z], axis=1)
    # Project onto the tangent plane, scale by 1/radius (unit-sphere psi).
    radial = np.einsum("ej,ej->e", grad3, mesh.edge_xyz)
    gt = grad3 - radial[:, None] * mesh.edge_xyz
    return np.einsum("ej,ej->e", gt, mesh.edge_normal) / mesh.radius


class TestGradientConvergence:
    def test_error_shrinks_second_order(self, meshes):
        errors = []
        for mesh in meshes:
            psi = _smooth_cell_field(mesh)
            g = ops.gradient(mesh, psi)
            exact = _gradient_exact(mesh)
            errors.append(np.abs(g - exact).max() / np.abs(exact).max())
        # Halving the spacing should cut the error by ~4 (allow >= 2.5).
        assert errors[1] < errors[0] / 2.5
        assert errors[2] < errors[1] / 2.5


class TestDivergenceConvergence:
    def test_rotational_field_divergence_converges_to_zero(self, meshes):
        """div of a solid-body (divergence-free) flow must shrink."""
        errors = []
        for mesh in meshes:
            axis = np.array([0.3, -0.5, 0.8])
            vel = np.cross(axis, mesh.edge_xyz)
            un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
            div = ops.divergence(mesh, un)
            scale = np.abs(un).max() / mesh.de.mean()
            errors.append(np.abs(div).max() / scale)
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]


class TestVorticityConvergence:
    def test_solid_body_vorticity_error_shrinks(self, meshes):
        errors = []
        for mesh in meshes:
            omega = 1e-4
            vel = np.cross([0.0, 0.0, omega], mesh.edge_xyz) * mesh.radius
            un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
            zeta = ops.curl(mesh, un)
            exact = 2.0 * omega * np.sin(mesh.vertex_lat)
            errors.append(np.abs(zeta - exact).max() / (2 * omega))
        assert errors[1] < errors[0] / 1.8
        assert errors[2] < errors[1] / 1.8


class TestReconstructionConvergence:
    def test_tangential_velocity_error_shrinks(self, meshes):
        errors = []
        for mesh in meshes:
            axis = np.array([0.2, 0.9, -0.4])
            vel = np.cross(axis, mesh.edge_xyz)
            un = np.einsum("ej,ej->e", vel, mesh.edge_normal)
            vt_exact = np.einsum(
                "ej,ej->e", vel, mesh.edge_tangent
            )
            vt = ops.tangential_velocity(mesh, un)
            errors.append(np.abs(vt - vt_exact).max() / np.abs(vel).max())
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]


class TestHydrostaticConsistency:
    def test_pgf_residual_shrinks_on_balanced_state(self, meshes):
        """The PGF of a balanced solid-body state must converge toward
        the Coriolis term (geostrophic balance) as resolution grows."""
        from repro.dycore import tendencies as tnd
        from repro.dycore.state import solid_body_rotation_state
        from repro.dycore.vertical import VerticalCoordinate

        vc = VerticalCoordinate.uniform(5)
        residuals = []
        for mesh in meshes:
            st = solid_body_rotation_state(mesh, vc, u0=20.0)
            pgf = tnd.pressure_gradient_force(
                mesh, st.theta, st.p_mid(),
                0.5 * (st.phi[:, :-1] + st.phi[:, 1:]),
            )
            cor = tnd.calc_coriolis_term(mesh, st.u)
            ke = tnd.tend_grad_ke_at_edge(mesh, st.u)
            resid = np.abs(pgf + cor + ke)
            residuals.append(resid.mean() / np.abs(pgf).mean())
        assert residuals[2] < residuals[0]
