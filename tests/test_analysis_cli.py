"""Tests of the `repro lint` command and the report driver."""

import json

import pytest

from repro.analysis.report import lint_all, render_human, to_json
from repro.cli import main


@pytest.fixture(scope="module")
def result():
    return lint_all(sanitize=True)


class TestLintAll:
    def test_own_kernels_clean(self, result):
        assert result["kernels"]["n_error"] == 0

    def test_every_corpus_case_found(self, result):
        assert result["corpus"]["all_expected_found"]
        for case in result["corpus"]["cases"]:
            assert case["ok"], case["name"]

    def test_sanitizer_confirms_a_race(self, result):
        case = next(c for c in result["corpus"]["cases"]
                    if c["name"] == "racy_flux_accumulation")
        verdicts = {d.rule: d.verdict for d in case["diagnostics"]}
        assert verdicts["SW001"] == "CONFIRMED"
        assert result["summary"]["confirmed"] >= 1

    def test_strict_ok(self, result):
        assert result["summary"]["strict_ok"]

    def test_diagnostics_ranked_errors_first(self, result):
        for case in result["corpus"]["cases"]:
            sev = [int(d.severity) for d in case["diagnostics"]]
            assert sev == sorted(sev, reverse=True)

    def test_json_roundtrip(self, result):
        blob = json.dumps(to_json(result))
        back = json.loads(blob)
        assert back["summary"]["strict_ok"] is True
        rules = {d["rule"] for c in back["corpus"]["cases"]
                 for d in c["diagnostics"]}
        assert {f"SW00{k}" for k in range(1, 8)} <= rules

    def test_human_report_mentions_rules_and_verdicts(self, result):
        text = render_human(result)
        for rule in ["SW001", "SW004", "SW006"]:
            assert rule in text
        assert "CONFIRMED" in text
        assert "strict PASS" in text

    def test_no_sanitize_leaves_verdicts_unset(self):
        static_only = lint_all(sanitize=False)
        assert static_only["summary"]["confirmed"] == 0
        assert static_only["summary"]["strict_ok"]


class TestCliLint:
    def test_lint_human(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "registered kernels" in out
        assert "known-bad corpus" in out

    def test_lint_json_strict(self, capsys):
        assert main(["lint", "--json", "--strict"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["strict_ok"] is True

    def test_lint_no_sanitize(self, capsys):
        assert main(["lint", "--no-sanitize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["confirmed"] == 0

    def test_strict_fails_on_missing_corpus_rule(self, monkeypatch, capsys):
        # Simulate an analyzer regression: a corpus case stops tripping
        # its rule.  strict must exit nonzero.
        import repro.analysis.report as report

        real = report.lint_all

        def degraded(sanitize=True):
            result = real(sanitize=sanitize)
            result["corpus"]["all_expected_found"] = False
            result["summary"]["strict_ok"] = False
            return result

        monkeypatch.setattr(report, "lint_all", degraded)
        assert main(["lint", "--strict", "--no-sanitize"]) == 1
        capsys.readouterr()
