"""Tests of the `repro lint` command and the report driver."""

import json

import pytest

from repro.analysis.report import lint_all, render_human, to_json
from repro.cli import main


@pytest.fixture(scope="module")
def result():
    return lint_all(sanitize=True)


class TestLintAll:
    def test_own_kernels_clean(self, result):
        assert result["kernels"]["n_error"] == 0

    def test_every_corpus_case_found(self, result):
        assert result["corpus"]["all_expected_found"]
        for case in result["corpus"]["cases"]:
            assert case["ok"], case["name"]

    def test_sanitizer_confirms_a_race(self, result):
        case = next(c for c in result["corpus"]["cases"]
                    if c["name"] == "racy_flux_accumulation")
        verdicts = {d.rule: d.verdict for d in case["diagnostics"]}
        assert verdicts["SW001"] == "CONFIRMED"
        assert result["summary"]["confirmed"] >= 1

    def test_strict_ok(self, result):
        assert result["summary"]["strict_ok"]

    def test_diagnostics_ranked_errors_first(self, result):
        for case in result["corpus"]["cases"]:
            sev = [int(d.severity) for d in case["diagnostics"]]
            assert sev == sorted(sev, reverse=True)

    def test_json_roundtrip(self, result):
        blob = json.dumps(to_json(result))
        back = json.loads(blob)
        assert back["summary"]["strict_ok"] is True
        rules = {d["rule"] for c in back["corpus"]["cases"]
                 for d in c["diagnostics"]}
        assert {f"SW00{k}" for k in range(1, 8)} <= rules

    def test_human_report_mentions_rules_and_verdicts(self, result):
        text = render_human(result)
        for rule in ["SW001", "SW004", "SW006"]:
            assert rule in text
        assert "CONFIRMED" in text
        assert "strict PASS" in text

    def test_no_sanitize_leaves_verdicts_unset(self):
        static_only = lint_all(sanitize=False)
        assert static_only["summary"]["confirmed"] == 0
        assert static_only["summary"]["strict_ok"]


class TestParallelLint:
    @pytest.fixture(scope="class")
    def par_result(self):
        return lint_all(sanitize=True, parallel=True)

    def test_real_step_plan_clean(self, par_result):
        assert par_result["parallel"]["step_plan"]["n_error"] == 0

    def test_race_corpus_all_expected_found(self, par_result):
        par = par_result["parallel"]["race_corpus"]
        assert par["all_expected_found"]
        for case in par["cases"]:
            assert case["ok"], case["name"]

    def test_dynamic_run_clean(self, par_result):
        dyn = par_result["parallel"]["dynamic_run"]
        assert dyn is not None
        assert dyn["clean"] is True
        assert dyn["ops"] > 0

    def test_strict_ok_folds_in_parallel(self, par_result):
        assert par_result["parallel"]["ok"]
        assert par_result["summary"]["strict_ok"]

    def test_overlap_plan_and_dynamic_run_clean(self, par_result):
        ov = par_result["parallel"]["overlap"]
        assert ov["ok"]
        assert ov["step_plan"]["n_error"] == 0
        assert ov["step_plan"]["interior_cells"] > 0
        assert ov["dynamic_run"]["clean"] is True

    def test_json_has_schema_version_and_parallel_section(self, par_result):
        blob = to_json(par_result)
        assert blob["schema_version"] == 3
        assert list(blob)[0] == "schema_version"
        rules = {d["rule"] for c in blob["parallel"]["race_corpus"]["cases"]
                 for d in c["diagnostics"]}
        assert {f"RD00{k}" for k in range(1, 6)} <= rules

    def test_json_is_stable_across_runs(self):
        """Machine-comparable CI diffs: two independent lints serialize
        byte-identically (stable rule ordering, no wall-clock fields)."""
        a = json.dumps(to_json(lint_all(sanitize=False)), sort_keys=False)
        b = json.dumps(to_json(lint_all(sanitize=False)), sort_keys=False)
        assert a == b

    def test_human_report_mentions_parallel_sections(self, par_result):
        text = render_human(par_result)
        assert "parallel step plan" in text
        assert "known-racy corpus" in text
        assert "dynamic run" in text


class TestCliLint:
    def test_lint_human(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "registered kernels" in out
        assert "known-bad corpus" in out

    def test_lint_json_strict(self, capsys):
        assert main(["lint", "--json", "--strict"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["strict_ok"] is True

    def test_lint_parallel_strict(self, capsys):
        assert main(["lint", "--strict", "--parallel", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 3
        assert payload["parallel"]["ok"] is True
        assert payload["parallel"]["dynamic_run"]["clean"] is True
        assert payload["parallel"]["overlap"]["ok"] is True

    def test_lint_no_sanitize(self, capsys):
        assert main(["lint", "--no-sanitize", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["confirmed"] == 0

    def test_strict_fails_on_missing_corpus_rule(self, monkeypatch, capsys):
        # Simulate an analyzer regression: a corpus case stops tripping
        # its rule.  strict must exit nonzero.
        import repro.analysis.report as report

        real = report.lint_all

        def degraded(sanitize=True, parallel=False):
            result = real(sanitize=sanitize, parallel=parallel)
            result["corpus"]["all_expected_found"] = False
            result["summary"]["strict_ok"] = False
            return result

        monkeypatch.setattr(report, "lint_all", degraded)
        assert main(["lint", "--strict", "--no-sanitize"]) == 1
        capsys.readouterr()
