"""Unit tests of the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collecting,
    get_metrics,
    set_metrics,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_gauge_keeps_last(self):
        g = Gauge()
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5

    def test_histogram_summary(self):
        h = Histogram()
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.mean == 2.0
        assert h.min == 1.0 and h.max == 3.0

    def test_empty_histogram_to_dict(self):
        assert Histogram().to_dict() == {
            "count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
        }


class TestRegistry:
    def test_get_or_create_is_stable(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert r.gauge("g") is r.gauge("g")
        assert r.histogram("h") is r.histogram("h")

    def test_shorthand_updates(self):
        r = MetricsRegistry()
        r.inc("n", 2)
        r.set_gauge("g", 7)
        r.observe("h", 1.0)
        snap = r.snapshot()
        assert snap["counters"]["n"] == 2.0
        assert snap["gauges"]["g"] == 7.0
        assert snap["histograms"]["h"]["count"] == 1

    def test_disabled_registry_drops_updates(self):
        r = MetricsRegistry(enabled=False)
        r.inc("n")
        r.set_gauge("g", 1)
        r.observe("h", 1.0)
        snap = r.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_snapshot_is_json_and_sorted(self):
        r = MetricsRegistry()
        r.inc("z")
        r.inc("a")
        snap = r.snapshot()
        json.dumps(snap)
        assert list(snap["counters"]) == ["a", "z"]

    def test_clear(self):
        r = MetricsRegistry()
        r.inc("a")
        r.clear()
        assert r.snapshot()["counters"] == {}


class TestGlobalRegistry:
    def test_default_global_disabled(self):
        assert get_metrics().enabled is False

    def test_collecting_installs_and_restores(self):
        prev = get_metrics()
        mine = MetricsRegistry()
        with collecting(mine) as r:
            assert r is mine                 # not silently replaced
            assert get_metrics() is mine
            get_metrics().inc("x")
        assert get_metrics() is prev
        assert mine.snapshot()["counters"]["x"] == 1.0

    def test_collecting_default_registry(self):
        with collecting() as r:
            assert r.enabled
            get_metrics().inc("y", 3)
        assert r.snapshot()["counters"]["y"] == 3.0

    def test_set_metrics_returns_previous(self):
        prev = get_metrics()
        mine = MetricsRegistry()
        old = set_metrics(mine)
        try:
            assert old is prev
        finally:
            set_metrics(prev)

    def test_restored_after_exception(self):
        prev = get_metrics()
        with pytest.raises(RuntimeError):
            with collecting():
                raise RuntimeError("boom")
        assert get_metrics() is prev


class TestSubstrateFeeds:
    """The instrumented layers publish into an enabled registry."""

    def test_comm_stats_feed(self):
        import numpy as np

        from repro.comm.message import Communicator

        comm = Communicator(2)
        with collecting() as r:
            comm.send(0, 1, np.zeros(4))
            comm.recv(0, 1)
            comm.allreduce_max([1.0, 2.0])
        snap = r.snapshot()
        assert snap["counters"]["comm.messages"] == 1.0
        assert snap["counters"]["comm.bytes"] == 32.0
        assert snap["counters"]["comm.collectives"] == 1.0

    def test_ldcache_feed(self):
        import numpy as np

        from repro.sunway.ldcache import LDCache

        cache = LDCache(size_bytes=8 * 1024, ways=2, line_bytes=64)
        with collecting() as r:
            cache.run(np.arange(0, 4096, 8))
        snap = r.snapshot()
        assert snap["counters"]["ldcache.accesses"] == 512.0
        assert (
            snap["counters"]["ldcache.hits"]
            + snap["counters"]["ldcache.misses"]
            == 512.0
        )
        assert snap["gauges"]["ldcache.occupancy_lines"] == cache.occupancy()

    def test_swgomp_feed(self):
        from repro.sunway.arch import CoreGroup
        from repro.sunway.swgomp import JobServer, TargetRegion

        server = JobServer(CoreGroup(n_cpes=4))
        server.init_from_mpe()
        with collecting() as r:
            TargetRegion(server).parallel_for(lambda s, e: None, 16,
                                              cost_per_elem=1e-6)
        snap = r.snapshot()
        assert snap["counters"]["swgomp.launches"] == 1.0
        assert snap["counters"]["swgomp.chunks"] == 4.0
        assert snap["histograms"]["swgomp.region_sim_seconds"]["count"] == 1


class TestThreadSafety:
    """The registry is hammered from serving worker threads; the
    shorthand mutators must hold one lock across lookup-and-mutate so
    concurrent first-touches of a name never lose updates."""

    def test_concurrent_inc_loses_nothing(self):
        from concurrent.futures import ThreadPoolExecutor

        r = MetricsRegistry()

        def worker(_):
            for _ in range(1000):
                r.inc("shared")
                r.inc("shared", 2)

        with ThreadPoolExecutor(max_workers=8) as ex:
            list(ex.map(worker, range(8)))
        assert r.snapshot()["counters"]["shared"] == 8 * 1000 * 3.0

    def test_concurrent_first_touch_single_instrument(self):
        """All threads racing to create the same names end up sharing
        one instrument per name (the get-or-create race)."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        r = MetricsRegistry()
        barrier = threading.Barrier(8)

        def worker(_):
            barrier.wait()
            for i in range(50):
                r.inc(f"c{i}")
                r.observe(f"h{i}", 1.0)
                r.set_gauge(f"g{i}", float(i))

        with ThreadPoolExecutor(max_workers=8) as ex:
            list(ex.map(worker, range(8)))
        snap = r.snapshot()
        for i in range(50):
            assert snap["counters"][f"c{i}"] == 8.0
            assert snap["histograms"][f"h{i}"]["count"] == 8
            assert snap["gauges"][f"g{i}"] == float(i)

    def test_concurrent_observe_and_snapshot(self):
        """Snapshots taken mid-storm are internally consistent and never
        raise (RuntimeError: dict changed size) against creations."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        r = MetricsRegistry()
        stop = threading.Event()

        def writer(k):
            i = 0
            while not stop.is_set():
                r.observe(f"h{k}.{i % 20}", float(i))
                i += 1

        def reader():
            while not stop.is_set():
                snap = r.snapshot()
                for h in snap["histograms"].values():
                    assert h["count"] >= 1

        with ThreadPoolExecutor(max_workers=6) as ex:
            futs = [ex.submit(writer, k) for k in range(4)]
            futs += [ex.submit(reader) for _ in range(2)]
            import time
            time.sleep(0.3)
            stop.set()
            for f in futs:
                f.result(timeout=10)
