"""Seeded-determinism regression tests.

The paper's year-scale runs are restartable and auditable only because
the whole stack replays bit-identically from a seed.  These tests pin
that contract at three levels: the coupled model, the chaos harness
(fault-injected *and* zero-fault), and the codebase itself (no unseeded
RNG anywhere).
"""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.obs import MetricsRegistry, collecting

REPO = Path(__file__).resolve().parent.parent

STATE_FIELDS = ("ps", "u", "theta", "w", "phi")


def _states_equal(a, b) -> bool:
    return all(
        np.array_equal(getattr(a, f), getattr(b, f)) for f in STATE_FIELDS
    ) and all(np.array_equal(a.tracers[k], b.tracers[k]) for k in a.tracers)


def _coupled_run(mesh, vcoord, seed: int, steps: int):
    from repro.dycore.state import tropical_profile_state
    from repro.model.config import SchemeConfig, scaled_grid_config
    from repro.model.grist import GristModel

    gc = scaled_grid_config(2, 8)
    model = GristModel(mesh, vcoord, gc, SchemeConfig("DP-PHY", False, False))
    state = tropical_profile_state(mesh, vcoord, rh_surface=0.85)
    rng = np.random.default_rng(seed)
    state.theta = state.theta + 0.3 * rng.normal(size=state.theta.shape)
    with collecting(MetricsRegistry(enabled=True)) as metrics:
        state = model.run(state, steps)
    counters = {k: c.value for k, c in metrics.counters.items()}
    return state, counters


def test_coupled_run_bitwise_deterministic(mesh_g2, vcoord8s):
    """Two runs with identical config and seed replay bit-identically —
    state arrays and metrics counters."""
    a, ca = _coupled_run(mesh_g2, vcoord8s, seed=7, steps=13)
    b, cb = _coupled_run(mesh_g2, vcoord8s, seed=7, steps=13)
    assert _states_equal(a, b)
    assert ca == cb
    c, _ = _coupled_run(mesh_g2, vcoord8s, seed=8, steps=13)
    assert not _states_equal(a, c)


@pytest.mark.slow
@pytest.mark.chaos
def test_chaos_smoke_recovers_everything_and_replays():
    """The acceptance run: a G3 integration under the smoke plan fires
    one fault of every class, recovers them all, survives, drifts zero
    bits from the fault-free twin, and replays identically."""
    from repro.resilience.chaos import run_chaos

    r1 = run_chaos(plan="smoke", level=3, nlev=8, steps=24, seed=0)
    assert r1["survived"]
    assert r1["rollbacks"] == 0
    assert r1["faults"]["n_unrecovered"] == 0
    # Every fault class of the acceptance criterion fired at least once.
    for kind in ("straggler", "cpe_fail", "dma_error", "msg_drop",
                 "msg_corrupt", "msg_delay", "ml_blowup"):
        assert r1["faults"]["fired"].get(kind, 0) >= 1, kind
    # Every recovery rung that should engage did.
    rec = r1["faults"]["recovered_by_action"]
    assert rec.get("retransmit", 0) >= 1
    assert rec.get("physics_fallback", 0) == 1
    # Bit-exact recovery: zero drift against the fault-free twin.
    assert r1["bitwise_identical"]
    assert r1["drift"] == {
        "ps_max_abs": 0.0, "u_max_abs": 0.0, "theta_max_abs": 0.0,
    }

    r2 = run_chaos(
        plan="smoke", level=3, nlev=8, steps=24, seed=0,
        include_baseline=False,
    )
    assert r2 == {k: r1[k] for k in r2}      # rerun-deterministic report


@pytest.mark.slow
@pytest.mark.chaos
def test_zero_fault_chaos_bitwise_identical_to_plain_run():
    """The chaos harness under the empty plan — shadow substrate,
    checkpoints and all — must not perturb the model by a single bit."""
    from repro.resilience import chaos
    from repro.resilience.faults import FaultPlan

    faulted = chaos._integrate(
        FaultPlan.named("none"), level=3, nlev=8, steps=13, seed=0,
        checkpoint_every=6, substrate_every=4, nparts=4, max_rollbacks=8,
    )
    assert faulted["survived"]
    assert faulted["faults"]["n_fired"] == 0

    model, state = chaos._build_model(3, 8, seed=0)
    state = model.run(state, 13)
    assert _states_equal(faulted["state"], state)


@pytest.mark.chaos
def test_rollback_restores_bitwise():
    """Checkpoint -> advance -> restore must reproduce the checkpointed
    trajectory bit-exactly (counters, surface slab, history included)."""
    from repro.resilience import chaos

    model, state = chaos._build_model(2, 8, seed=0)
    state = model.run(state, 3)
    snap = chaos._snapshot(model, state)
    ahead = model.run(state.copy(), 5)
    restored = chaos._restore(model, snap)
    replay = model.run(restored, 5)
    assert _states_equal(ahead, replay)


UNSEEDED_PATTERNS = [
    re.compile(r"default_rng\(\s*\)"),
    re.compile(r"np\.random\.(seed|rand|randn|random|normal|randint)\("),
    re.compile(r"\brandom\.(seed|random|randint|choice|shuffle)\("),
]


def test_no_unseeded_rng_anywhere():
    """Audit pin: every RNG in the codebase takes an explicit seed.

    ``default_rng`` with no argument, the legacy numpy global-state API
    and stdlib ``random`` calls are all process-order dependent; any of
    them silently breaks the replay contract the resilience layer
    depends on.
    """
    offenders = []
    for sub in ("src", "tests", "benchmarks", "examples"):
        root = REPO / sub
        if not root.exists():
            continue
        for path in root.rglob("*.py"):
            text = path.read_text()
            for i, line in enumerate(text.splitlines(), 1):
                for pat in UNSEEDED_PATTERNS:
                    if pat.search(line):
                        offenders.append(f"{path.relative_to(REPO)}:{i}: {line.strip()}")
    assert not offenders, "unseeded RNG found:\n" + "\n".join(offenders)
