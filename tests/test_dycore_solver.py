"""Integration tests of the dynamical core: steady states, balance,
conservation, stability, and the named tendency kernels."""

import numpy as np
import pytest

from repro.dycore import tendencies as tnd
from repro.dycore.kernels import MAJOR_KERNELS, n_elements, sample_fields
from repro.dycore.solver import DycoreConfig, DynamicalCore
from repro.dycore.state import (
    baroclinic_wave_state,
    isothermal_rest_state,
    solid_body_rotation_state,
    tropical_profile_state,
)
from repro.dycore.vertical import VerticalCoordinate
from repro.grid.mesh import build_mesh
from repro.precision.policy import PrecisionPolicy


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(3)


@pytest.fixture(scope="module")
def vc():
    return VerticalCoordinate.uniform(8)


class TestRestState:
    def test_exactly_steady_hydrostatic(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        st = isothermal_rest_state(mesh, vc)
        st2 = core.run(st.copy(), 10)
        assert np.abs(st2.u).max() == 0.0
        np.testing.assert_array_equal(st2.ps, st.ps)

    def test_exactly_steady_nonhydrostatic(self, mesh, vc):
        core = DynamicalCore(
            mesh, vc, DycoreConfig(dt=600.0, nonhydrostatic=True)
        )
        st = isothermal_rest_state(mesh, vc)
        st2 = core.run(st.copy(), 10)
        assert np.abs(st2.w).max() < 1e-10
        assert np.abs(st2.u).max() == 0.0

    def test_mass_conserved_exactly(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        st = solid_body_rotation_state(mesh, vc)
        m0 = st.total_dry_mass()
        st2 = core.run(st, 20)
        assert st2.total_dry_mass() == pytest.approx(m0, rel=1e-13)


class TestSolidBodyRotation:
    def test_balance_held_for_hours(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        st = solid_body_rotation_state(mesh, vc)
        wind0 = np.abs(st.u).max()
        st2 = core.run(st.copy(), 36)      # 6 hours
        wind1 = np.abs(st2.u).max()
        assert abs(wind1 - wind0) / wind0 < 0.08
        drift = np.linalg.norm(st2.ps - st.ps) / np.linalg.norm(
            st.ps - st.ps.mean()
        )
        # The divergence damping that stabilises stratified long runs
        # erodes the (numerically slightly divergent) balance a little.
        assert drift < 0.12

    def test_vorticity_diagnostic_reasonable(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        st = solid_body_rotation_state(mesh, vc, u0=20.0)
        d = core.diagnostics(st)
        # Solid-body relative vorticity = 2 u0 sin(lat) / a.
        from repro.constants import EARTH_RADIUS

        expected_max = 2 * 20.0 / EARTH_RADIUS
        assert d["vor"].max() == pytest.approx(expected_max, rel=0.15)


class TestBaroclinicWave:
    def test_runs_stably_and_develops(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=450.0))
        st = baroclinic_wave_state(mesh, vc)
        st2 = core.run(st, 48)
        assert np.isfinite(st2.ps).all()
        assert np.abs(st2.u).max() < 150.0     # no blow-up
        # The perturbation must not be diffused to nothing.
        assert np.abs(st2.u).max() > 5.0


class TestTropicalProfile:
    def test_stably_stratified(self, mesh, vc):
        st = tropical_profile_state(mesh, vc)
        dtheta = np.diff(st.theta, axis=1)
        # theta decreases with index (index increases downward).
        assert np.all(dtheta <= 1e-10)

    def test_humidity_below_saturation(self, mesh, vc):
        from repro.dycore.vertical import exner
        from repro.physics.surface import saturation_mixing_ratio

        st = tropical_profile_state(mesh, vc)
        p = st.p_mid()
        temp = st.theta * exner(p)
        qsat = saturation_mixing_ratio(temp, p)
        assert np.all(st.tracers["qv"] <= qsat + 1e-12)


class TestMixedPrecision:
    def test_mixed_stays_within_five_percent(self, mesh, vc):
        """The section 3.4.1 acceptance test on a real run."""
        from repro.precision.analysis import DeviationTracker

        st0 = solid_body_rotation_state(mesh, vc)
        core_dp = DynamicalCore(
            mesh, vc, DycoreConfig(dt=600.0, policy=PrecisionPolicy(mixed=False))
        )
        core_mx = DynamicalCore(
            mesh, vc, DycoreConfig(dt=600.0, policy=PrecisionPolicy(mixed=True))
        )
        st_dp = st0.copy()
        st_mx = st0.copy()
        tracker = DeviationTracker()
        for _ in range(6):
            st_dp = core_dp.run(st_dp, 6)
            st_mx = core_mx.run(st_mx, 6)
            d_dp = core_dp.diagnostics(st_dp)
            d_mx = core_mx.diagnostics(st_mx)
            tracker.record(d_mx["ps"], d_dp["ps"], d_mx["vor"], d_dp["vor"])
        assert tracker.passes(), tracker.summary()
        # And the runs must actually differ (mixed precision is real).
        assert tracker.max_ps > 0.0 or tracker.max_vor > 0.0

    def test_mixed_uses_fp32_somewhere(self, mesh, vc):
        pol = PrecisionPolicy(mixed=True)
        st = solid_body_rotation_state(mesh, vc)
        ke = tnd.tend_grad_ke_at_edge(mesh, st.u, pol)
        assert ke.dtype == np.float32
        pgf = tnd.pressure_gradient_force(
            mesh, st.theta, st.p_mid(),
            0.5 * (st.phi[:, :-1] + st.phi[:, 1:]), pol,
        )
        assert pgf.dtype == np.float64


class TestTendencyKernels:
    def test_mass_flux_of_rest_is_zero(self, mesh, vc):
        st = isothermal_rest_state(mesh, vc)
        F = tnd.primal_normal_flux_edge(mesh, st.dpi(), st.u)
        np.testing.assert_array_equal(F, 0.0)

    def test_coriolis_term_antisymmetric_under_flow_reversal(self, mesh, vc):
        st = solid_body_rotation_state(mesh, vc)
        t1 = tnd.calc_coriolis_term(mesh, st.u)
        t2 = tnd.calc_coriolis_term(mesh, -st.u)
        # (zeta+f) flips only zeta; for dominating f the term flips sign.
        corr = (t1 * -t2).sum() / np.sqrt((t1**2).sum() * (t2**2).sum())
        assert corr > 0.9

    def test_compute_rrr_is_density(self, mesh, vc):
        from repro.constants import R_DRY

        st = isothermal_rest_state(mesh, vc, temperature=300.0)
        rrr = tnd.compute_rrr(mesh, st.dpi(), st.phi)
        p = st.p_mid()
        rho_expected = p / (R_DRY * 300.0)
        np.testing.assert_allclose(rrr, rho_expected, rtol=0.05)

    def test_grad_ke_zero_for_uniform_ke(self, mesh, vc):
        # Solid-body flow: KE varies with latitude, so grad != 0; but a
        # zero flow gives exactly zero.
        t = tnd.tend_grad_ke_at_edge(mesh, np.zeros((mesh.ne, 3)))
        np.testing.assert_array_equal(t, 0.0)

    def test_vertical_mass_flux_boundary_zero(self, mesh, vc):
        rng = np.random.default_rng(0)
        D = rng.normal(size=(mesh.nc, vc.nlev))
        M = tnd.vertical_mass_flux(mesh, vc.sigma_interfaces, D)
        np.testing.assert_allclose(M[:, 0], 0.0, atol=1e-12)
        np.testing.assert_allclose(M[:, -1], 0.0, atol=1e-12)

    def test_vertical_advection_conserves_column(self, mesh, vc):
        rng = np.random.default_rng(1)
        D = rng.normal(size=(mesh.nc, vc.nlev))
        M = tnd.vertical_mass_flux(mesh, vc.sigma_interfaces, D)
        field = rng.random((mesh.nc, vc.nlev))
        t = tnd.vertical_advection_cell(M, field)
        np.testing.assert_allclose(t.sum(axis=1), 0.0, atol=1e-10)


class TestKernelRegistry:
    def test_all_kernels_run(self, mesh):
        fields = sample_fields(mesh, nlev=4)
        for name, reg in MAJOR_KERNELS.items():
            out = reg.run(mesh, fields)
            assert np.isfinite(out).all(), name
            assert n_elements(mesh, reg, 4) > 0

    def test_fig9_kernel_names_present(self):
        for name in (
            "tracer_transport_hori_flux_limiter",
            "compute_rrr",
            "primal_normal_flux_edge",
            "calc_coriolis_term",
        ):
            assert name in MAJOR_KERNELS

    def test_coriolis_spec_matches_paper_characterisation(self):
        """'calc_coriolis_term, lacking mixed precision optimization and
        accessing relatively few arrays' (section 4.6)."""
        spec = MAJOR_KERNELS["calc_coriolis_term"].spec
        assert spec.mixed_data_fraction == 0.0
        assert spec.arrays_streamed <= 4


class TestNonFiniteGuard:
    def test_solver_raises_on_blowup(self, mesh, vc):
        core = DynamicalCore(mesh, vc, DycoreConfig(dt=600.0))
        st = isothermal_rest_state(mesh, vc)
        st.ps[:] = np.nan
        with pytest.raises(FloatingPointError):
            core.run(st, 1)
