"""Tests of the communication layer: messages, halo exchange (with the
aggregation optimisation), fat-tree model, and grouped I/O."""

import numpy as np
import pytest

from repro.comm.halo import HaloExchanger
from repro.comm.message import Communicator
from repro.comm.parallel_io import GroupedIOWriter
from repro.comm.topology import SUNWAY_TOPOLOGY, FatTreeTopology
from repro.grid.mesh import build_mesh
from repro.partition.decomposition import decompose


@pytest.fixture(scope="module")
def mesh():
    return build_mesh(2)


@pytest.fixture(scope="module")
def subs(mesh):
    return decompose(mesh, 4, seed=0)


class TestCommunicator:
    def test_send_recv_roundtrip(self):
        comm = Communicator(2)
        buf = np.arange(10.0)
        comm.send(0, 1, buf)
        out = comm.recv(0, 1)
        np.testing.assert_array_equal(out, buf)
        assert comm.pending() == 0

    def test_send_copies_buffer(self):
        comm = Communicator(2)
        buf = np.arange(4.0)
        comm.send(0, 1, buf)
        buf[:] = -1
        np.testing.assert_array_equal(comm.recv(0, 1), np.arange(4.0))

    def test_recv_before_send_raises(self):
        comm = Communicator(2)
        with pytest.raises(RuntimeError):
            comm.recv(0, 1)

    def test_double_send_same_tag_raises(self):
        comm = Communicator(2)
        comm.send(0, 1, np.zeros(1))
        with pytest.raises(RuntimeError):
            comm.send(0, 1, np.zeros(1))

    def test_stats_accounting(self):
        comm = Communicator(3)
        comm.send(0, 1, np.zeros(8))   # 64 bytes
        comm.send(1, 2, np.zeros(4))   # 32 bytes
        assert comm.stats.messages == 2
        assert comm.stats.bytes_sent == 96
        assert comm.stats.per_pair[(0, 1)] == 64

    def test_rank_range_checked(self):
        comm = Communicator(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, np.zeros(1))

    def test_allreduce(self):
        comm = Communicator(3)
        assert comm.allreduce_sum([1.0, 2.0, 3.0]) == 6.0
        assert comm.allreduce_max([1.0, 5.0, 3.0]) == 5.0
        with pytest.raises(ValueError):
            comm.allreduce_sum([1.0])


class TestCollectiveAccounting:
    """Collectives record their payload bytes — consistently across
    allreduce/gather — into ``collective_bytes``, never into the
    point-to-point message/byte counters."""

    def test_allreduce_sum_bytes(self):
        comm = Communicator(3)
        comm.allreduce_sum([np.zeros(4), np.zeros(4), np.zeros(4)])
        assert comm.stats.collectives == 1
        assert comm.stats.collective_bytes == 3 * 32
        assert comm.stats.messages == 0
        assert comm.stats.bytes_sent == 0

    def test_allreduce_scalar_bytes(self):
        comm = Communicator(2)
        comm.allreduce_sum([1.0, 2.0])
        comm.allreduce_max([1.0, 2.0])
        assert comm.stats.collectives == 2
        assert comm.stats.collective_bytes == 2 * 2 * 8

    def test_gather_accounts_as_collective(self):
        comm = Communicator(3)
        comm.gather([np.zeros(2), np.zeros(2), np.zeros(2)], root=0)
        assert comm.stats.collectives == 1
        # Non-root contributions only (the root's data never moves).
        assert comm.stats.collective_bytes == 2 * 16
        assert comm.stats.messages == 0
        assert comm.stats.bytes_sent == 0

    def test_reset_clears_collective_bytes(self):
        comm = Communicator(2)
        comm.allreduce_sum([1.0, 2.0])
        comm.stats.reset()
        assert comm.stats.collectives == 0
        assert comm.stats.collective_bytes == 0

    def test_metrics_feed_and_disabled_guard(self):
        from repro.obs import collecting, get_metrics

        comm = Communicator(2)
        with collecting() as r:
            comm.allreduce_sum([np.zeros(2), np.zeros(2)])
        snap = r.snapshot()
        assert snap["counters"]["comm.collectives"] == 1.0
        assert snap["counters"]["comm.collective_bytes"] == 32.0
        # Outside `collecting`, the default registry is disabled; the
        # guard must keep both record paths from emitting anything.
        assert not get_metrics().enabled
        comm.allreduce_max([1.0, 2.0])
        comm.send(0, 1, np.zeros(1))
        comm.recv(0, 1)
        with collecting() as r2:
            pass
        assert "comm.collectives" not in r2.snapshot()["counters"]


class TestHaloExchange:
    def test_exchange_fills_halo(self, mesh, subs):
        hx = HaloExchanger(subs)
        rng = np.random.default_rng(0)
        gfield = rng.normal(size=(mesh.nc, 3))
        per = hx.scatter_global("T", gfield)
        for sub, arr in zip(subs, per):
            arr[sub.n_owned:] = np.nan
        hx.exchange()
        for sub, arr in zip(subs, per):
            np.testing.assert_allclose(arr, gfield[sub.local_cells])

    def test_exchange_1d_and_3d_fields(self, mesh, subs):
        hx = HaloExchanger(subs)
        rng = np.random.default_rng(1)
        f1 = rng.normal(size=mesh.nc)
        f3 = rng.normal(size=(mesh.nc, 4, 2))
        p1 = hx.scatter_global("a", f1)
        p3 = hx.scatter_global("b", f3)
        for sub, a, b in zip(subs, p1, p3):
            a[sub.n_owned:] = -1
            b[sub.n_owned:] = -1
        hx.exchange()
        for sub, a, b in zip(subs, p1, p3):
            np.testing.assert_allclose(a, f1[sub.local_cells])
            np.testing.assert_allclose(b, f3[sub.local_cells])

    def test_aggregation_message_count(self, mesh, subs):
        """The section 3.1.3 claim: one message per pair regardless of
        how many variables are registered."""
        hx = HaloExchanger(subs)
        rng = np.random.default_rng(2)
        for name in ("a", "b", "c", "d"):
            hx.scatter_global(name, rng.normal(size=mesh.nc))
        hx.comm.stats.reset()
        hx.exchange()
        agg = hx.comm.stats.messages
        hx.comm.stats.reset()
        hx.exchange_unaggregated()
        unagg = hx.comm.stats.messages
        assert unagg == 4 * agg

    def test_unaggregated_same_result(self, mesh, subs):
        rng = np.random.default_rng(3)
        gfield = rng.normal(size=mesh.nc)
        hx = HaloExchanger(subs)
        per = hx.scatter_global("x", gfield)
        for sub, arr in zip(subs, per):
            arr[sub.n_owned:] = np.nan
        hx.exchange_unaggregated()
        for sub, arr in zip(subs, per):
            np.testing.assert_allclose(arr, gfield[sub.local_cells])

    def test_gather_global_roundtrip(self, mesh, subs):
        hx = HaloExchanger(subs)
        rng = np.random.default_rng(4)
        gfield = rng.normal(size=(mesh.nc, 2))
        hx.scatter_global("T", gfield)
        back = hx.gather_global("T", mesh.nc)
        np.testing.assert_allclose(back, gfield)

    def test_shape_mismatch_rejected(self, subs):
        hx = HaloExchanger(subs)
        with pytest.raises(ValueError):
            hx.register("bad", [np.zeros(3) for _ in subs])


class TestFatTreeTopology:
    def test_locality_tiers(self):
        t = FatTreeTopology()
        same_node = t.p2p_time(0, 1, 1024)
        same_super = t.p2p_time(0, 600, 1024)
        cross_super = t.p2p_time(0, t.processes_per_supernode + 1, 1024)
        assert same_node < same_super < cross_super

    def test_supernode_mapping(self):
        t = FatTreeTopology()
        assert t.processes_per_supernode == 1536
        assert t.supernode_of(0) == 0
        assert t.supernode_of(1535) == 0
        assert t.supernode_of(1536) == 1

    def test_contention_only_across_supernodes(self):
        t = FatTreeTopology()
        assert t.contention_factor(1000, 0.5) == 1.0
        assert t.contention_factor(10_000, 0.5) > 1.0

    def test_contention_bounded_by_oversubscription(self):
        t = FatTreeTopology()
        f = t.contention_factor(10_000_000, 1.0)
        assert f == pytest.approx(t.oversubscription)

    def test_exchange_time_monotone_in_bytes(self):
        t = SUNWAY_TOPOLOGY
        t1 = t.exchange_time(4096, 6, 1e4)
        t2 = t.exchange_time(4096, 6, 1e6)
        assert t2 > t1

    def test_exchange_time_single_process_zero(self):
        assert SUNWAY_TOPOLOGY.exchange_time(1, 6, 1e6) == 0.0

    def test_allreduce_log_scaling(self):
        t = SUNWAY_TOPOLOGY
        assert t.allreduce_time(2**10) < t.allreduce_time(2**20)
        assert t.allreduce_time(1) == 0.0


class TestGroupedIO:
    def test_roundtrip(self, mesh, subs, tmp_path):
        rng = np.random.default_rng(5)
        gfield = rng.normal(size=(mesh.nc, 3))
        per = [gfield[s.local_cells] for s in subs]
        w = GroupedIOWriter(subs, str(tmp_path), group_size=2)
        paths = w.write("T", per)
        assert len(paths) == w.n_groups == 2
        back = GroupedIOWriter.read_global(paths, mesh.nc)
        np.testing.assert_allclose(back, gfield)

    def test_writer_count_scales_with_groups(self, mesh, subs, tmp_path):
        per = [np.zeros(s.local_cells.size) for s in subs]
        w_all = GroupedIOWriter(subs, str(tmp_path / "a"), group_size=1)
        w_grouped = GroupedIOWriter(subs, str(tmp_path / "b"), group_size=4)
        w_all.write("x", per)
        w_grouped.write("x", per)
        assert w_all.write_count == 4
        assert w_grouped.write_count == 1

    def test_missing_shard_detected(self, mesh, subs, tmp_path):
        per = [np.zeros(s.local_cells.size) for s in subs]
        w = GroupedIOWriter(subs, str(tmp_path), group_size=2)
        paths = w.write("T", per)
        with pytest.raises(ValueError):
            GroupedIOWriter.read_global(paths[:1], mesh.nc)
