"""Tests of the SWGOMP directive parser and the hybrid vertical
coordinate extension."""

import numpy as np
import pytest

from repro.sunway.directives import (
    FIG4_SOURCE,
    DirectiveError,
    parse_directives,
)


class TestFig4:
    """The paper's own Fig. 4 listing must parse into its launch plan."""

    def test_two_target_regions(self):
        plan = parse_directives(FIG4_SOURCE)
        assert plan.n_target_regions == 2

    def test_first_region_structure(self):
        plan = parse_directives(FIG4_SOURCE)
        first = plan.targets[0]
        assert first.combined == ()
        assert len(first.loops) == 1
        assert first.loops[0].variable == "ie"
        assert first.loops[0].nowait is True
        assert set(first.private) == {"ie", "v1", "v2", "ilev"}

    def test_second_region_is_workshare(self):
        plan = parse_directives(FIG4_SOURCE)
        second = plan.targets[1]
        assert second.combined == ("parallel", "workshare")
        assert len(second.workshares) == 1
        assert second.workshares[0].statements == 1   # the array op

    def test_unified_shared_memory_default(self):
        """SWGOMP backports USM so no map clauses are needed."""
        plan = parse_directives(FIG4_SOURCE)
        assert plan.uses_unified_shared_memory


class TestParserStructure:
    def test_num_teams_clause(self):
        plan = parse_directives(
            "!$omp target num_teams(4)\n!$omp parallel\n!$omp do\n"
            "do i = 1, n\nend do\n!$omp end do\n"
            "!$omp end parallel\n!$omp end target\n"
        )
        assert plan.targets[0].num_teams == 4

    def test_case_insensitive(self):
        plan = parse_directives(
            "!$OMP TARGET\n!$OMP PARALLEL\n!$OMP DO\ndo k = 1, n\nend do\n"
            "!$OMP END DO\n!$OMP END PARALLEL\n!$OMP END TARGET\n"
        )
        assert plan.n_target_regions == 1
        assert plan.targets[0].loops[0].variable == "k"

    def test_plain_code_ignored(self):
        plan = parse_directives("x = 1\n  call foo()\n! a comment\n")
        assert plan.n_target_regions == 0

    @pytest.mark.parametrize("source,msg", [
        ("!$omp end target\n", "end target without"),
        ("!$omp target\n", "unterminated target"),
        ("!$omp do\n", "outside target"),
        ("!$omp parallel\n", "outside a target"),
        ("!$omp target\n!$omp target\n", "nested"),
        ("!$omp target\n!$omp simd\n!$omp end target\n", "unsupported"),
    ])
    def test_malformed_rejected(self, source, msg):
        with pytest.raises(DirectiveError, match=msg):
            parse_directives(source)

    def test_trailing_comment_stripped(self):
        """Fig. 4 style `!$omp target !Just add this` must still parse."""
        plan = parse_directives(
            "!$omp target !parallel in a comment is not a clause\n"
            "!$omp end target\n"
        )
        assert plan.targets[0].combined == ()

    def test_multiple_loops_one_region(self):
        src = (
            "!$omp target\n!$omp parallel\n"
            "!$omp do\ndo i = 1, n\nend do\n!$omp end do\n"
            "!$omp do\ndo j = 1, m\nend do\n!$omp end do nowait\n"
            "!$omp end parallel\n!$omp end target\n"
        )
        plan = parse_directives(src)
        region = plan.targets[0]
        assert [loop.variable for loop in region.loops] == ["i", "j"]
        assert [loop.nowait for loop in region.loops] == [False, True]


class TestStructuredErrors:
    """Malformed directives produce structured errors, never silent drops."""

    def test_unclosed_target_carries_line_and_code(self):
        with pytest.raises(DirectiveError) as exc:
            parse_directives("x = 1\n!$omp target\ny = 2\n")
        assert exc.value.code == "unterminated"
        assert exc.value.line == 2

    def test_end_without_open_carries_line_and_code(self):
        with pytest.raises(DirectiveError) as exc:
            parse_directives("!$omp end target\n")
        assert exc.value.code == "unbalanced-end"
        assert exc.value.line == 1

    @pytest.mark.parametrize("clause", [
        "map(to:x)", "schedule(static,4)", "collapse(2)", "reduction(+:s)",
    ])
    def test_unknown_clause_rejected_not_dropped(self, clause):
        with pytest.raises(DirectiveError) as exc:
            parse_directives(f"!$omp target {clause}\n!$omp end target\n")
        assert exc.value.code == "unknown-clause"
        assert exc.value.line == 1

    def test_known_clauses_still_accepted(self):
        plan = parse_directives(
            "!$omp target num_teams(2)\n"
            "!$omp parallel private(i, j)\n"
            "!$omp do\ndo i = 1, n\nend do\n!$omp end do nowait\n"
            "!$omp end parallel\n!$omp end target\n"
        )
        region = plan.targets[0]
        assert region.num_teams == 2
        assert set(region.private) == {"i", "j"}
        assert region.loops[0].nowait is True

    def test_error_to_dict(self):
        with pytest.raises(DirectiveError) as exc:
            parse_directives("!$omp target map(to:x)\n!$omp end target\n")
        d = exc.value.to_dict()
        assert d["code"] == "unknown-clause"
        assert d["line"] == 1
        assert "map(to:x)" in d["message"]

    def test_collect_mode_gathers_all_errors(self):
        src = (
            "!$omp end do\n"               # unbalanced-end
            "!$omp target map(to:x)\n"     # unknown-clause
            "!$omp target\n"               # opens; never closed
            "!$omp end target\n"           # closes the line-3 target
            "!$omp target\n"               # unterminated at EOF
        )
        plan = parse_directives(src, errors="collect")
        codes = [e.code for e in plan.errors]
        assert codes == ["unbalanced-end", "unknown-clause", "unterminated"]
        assert all(isinstance(e, DirectiveError) for e in plan.errors)
        # Best-effort recovery keeps the well-formed region AND the
        # unterminated one.
        assert plan.n_target_regions == 2

    def test_collect_mode_clean_source_has_no_errors(self):
        plan = parse_directives(FIG4_SOURCE, errors="collect")
        assert plan.errors == []
        assert plan.n_target_regions == 2

    def test_invalid_errors_mode_rejected(self):
        with pytest.raises(ValueError, match="raise.*collect"):
            parse_directives("", errors="ignore")


class TestHybridVerticalCoordinate:
    def setup_method(self):
        from repro.dycore.vertical import HybridVerticalCoordinate

        self.hv = HybridVerticalCoordinate.standard(10)

    def test_boundary_identities(self):
        np.testing.assert_allclose(self.hv.b_interfaces[0], 0.0)
        np.testing.assert_allclose(self.hv.b_interfaces[-1], 1.0)
        np.testing.assert_allclose(self.hv.a_interfaces[-1], 0.0)
        assert self.hv.a_interfaces[0] == self.hv.ptop

    def test_pressure_bracket(self):
        ps = np.array([1.0e5, 9.2e4])
        p = self.hv.pressure_interfaces(ps)
        np.testing.assert_allclose(p[:, 0], self.hv.ptop)
        np.testing.assert_allclose(p[:, -1], ps)
        assert np.all(np.diff(p, axis=1) > 0)

    def test_mass_closure(self):
        ps = np.array([1.0e5, 8.5e4])
        np.testing.assert_allclose(
            self.hv.dpi(ps).sum(axis=1), ps - self.hv.ptop
        )

    def test_upper_levels_pressure_like(self):
        """B ~ 0 aloft: upper interfaces don't move with ps."""
        p_hi = self.hv.pressure_interfaces(np.array([1.0e5]))
        p_lo = self.hv.pressure_interfaces(np.array([9.0e4]))
        assert abs(p_hi[0, 2] - p_lo[0, 2]) < 1.0        # fixed aloft
        assert p_hi[0, -1] - p_lo[0, -1] == pytest.approx(1.0e4)

    def test_degenerate_sigma_equivalence(self):
        """A = ptop(1-s), B = s reproduces the pure sigma coordinate."""
        from repro.dycore.vertical import (
            HybridVerticalCoordinate,
            VerticalCoordinate,
        )

        s = np.linspace(0.0, 1.0, 9)
        sig = VerticalCoordinate(s, ptop=225.0)
        hyb = HybridVerticalCoordinate(225.0 * (1.0 - s), s)
        ps = np.array([1.0e5, 9.5e4, 8.0e4])
        np.testing.assert_allclose(
            hyb.pressure_interfaces(ps), sig.pressure_interfaces(ps)
        )
        np.testing.assert_allclose(hyb.dpi(ps), sig.dpi(ps))

    def test_invalid_boundaries_rejected(self):
        from repro.dycore.vertical import HybridVerticalCoordinate

        s = np.linspace(0.0, 1.0, 5)
        with pytest.raises(ValueError):
            HybridVerticalCoordinate(225.0 * (1.0 - s), s * 0.9)   # B(end) != 1
        with pytest.raises(ValueError):
            HybridVerticalCoordinate(np.ones(5) * 100.0, s)        # A(end) != 0

    def test_model_runs_on_hybrid(self):
        from repro.dycore.solver import DycoreConfig, DynamicalCore
        from repro.dycore.state import solid_body_rotation_state
        from repro.grid.mesh import build_mesh

        mesh = build_mesh(2)
        st = solid_body_rotation_state(mesh, self.hv)
        core = DynamicalCore(mesh, self.hv, DycoreConfig(dt=600.0))
        m0 = st.total_dry_mass()
        st2 = core.run(st, 12)
        assert np.isfinite(st2.ps).all()
        assert st2.total_dry_mass() == pytest.approx(m0, rel=1e-13)

    def test_vertical_mass_flux_boundaries_on_hybrid(self):
        from repro.dycore.tendencies import vertical_mass_flux
        from repro.grid.mesh import build_mesh

        mesh = build_mesh(1)
        rng = np.random.default_rng(0)
        D = rng.normal(size=(mesh.nc, self.hv.nlev))
        M = vertical_mass_flux(mesh, self.hv.b_interfaces, D)
        np.testing.assert_allclose(M[:, 0], 0.0, atol=1e-12)
        np.testing.assert_allclose(M[:, -1], 0.0, atol=1e-12)
