"""Tests of the performance model and the scaling experiments: the
shapes the paper reports must emerge from the model."""

import numpy as np
import pytest

from repro.model.config import TABLE2_GRIDS, TABLE3_SCHEMES
from repro.perf.metrics import sdpd_from_step_time, sdpd_from_sypd, sypd_from_sdpd
from repro.perf.model import PerformanceModel, PerfParams
from repro.perf.scaling import (
    STRONG_SCALING_PROCS,
    WEAK_SCALING_LADDER,
    headline_numbers,
    strong_scaling_experiment,
    weak_scaling_experiment,
)


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


@pytest.fixture(scope="module")
def weak():
    return weak_scaling_experiment()


@pytest.fixture(scope="module")
def strong():
    return strong_scaling_experiment()


class TestMetrics:
    def test_sdpd_definition(self):
        # one dynamics step of 4 s taking 4 s of wall time = 1 SDPD.
        assert sdpd_from_step_time(4.0, 4.0) == pytest.approx(1.0)
        assert sdpd_from_step_time(0.4, 4.0) == pytest.approx(10.0)

    def test_sypd_roundtrip(self):
        assert sypd_from_sdpd(365.0) == pytest.approx(1.0)
        assert sdpd_from_sypd(0.5) == pytest.approx(182.5)

    def test_invalid_step_time(self):
        with pytest.raises(ValueError):
            sdpd_from_step_time(0.0, 4.0)


class TestStepCost:
    def test_breakdown_sums(self, model):
        cost = model.step_cost(TABLE2_GRIDS["G12"], TABLE3_SCHEMES["MIX-ML"], 524288)
        assert cost.total > 0
        assert cost.kernels > 0 and cost.launch > 0 and cost.comm > 0
        assert 0.0 < cost.comm_fraction < 1.0

    def test_more_cells_cost_more(self, model):
        scheme = TABLE3_SCHEMES["MIX-ML"]
        c1 = model.step_cost(TABLE2_GRIDS["G12"], scheme, 524288)
        c2 = model.step_cost(TABLE2_GRIDS["G12"], scheme, 32768)
        assert c2.kernels > c1.kernels

    def test_dp_memory_cost_exceeds_mix(self, model):
        g = TABLE2_GRIDS["G12"]
        dp = model.step_cost(g, TABLE3_SCHEMES["DP-PHY"], 131072)
        mx = model.step_cost(g, TABLE3_SCHEMES["MIX-PHY"], 131072)
        assert dp.kernels > mx.kernels

    def test_ml_physics_cheaper_despite_more_flops(self, model):
        """Section 4.7: ML radiation needs ~2x RRTMG's FLOPs but runs at
        74-84% of peak vs 6% — so it is faster end to end."""
        p = model.params
        assert p.phys_ml_flops > p.phys_conv_flops
        g = TABLE2_GRIDS["G12"]
        conv = model.step_cost(g, TABLE3_SCHEMES["MIX-PHY"], 131072)
        ml = model.step_cost(g, TABLE3_SCHEMES["MIX-ML"], 131072)
        assert ml.physics < conv.physics

    def test_oversupplied_procs_rejected(self, model):
        with pytest.raises(ValueError):
            model.step_cost(TABLE2_GRIDS["G6"], TABLE3_SCHEMES["MIX-ML"], 524288)


class TestHeadlineNumbers:
    def test_abstract_claims(self):
        """'simulation speeds at 491 SDPD (3km) and 181 SDPD (1km)' and
        '0.5 simulated-year-per-day for 1km' — reproduced within ~25%."""
        h = headline_numbers()
        assert h["G11S_sdpd"] == pytest.approx(491.0, rel=0.25)
        assert h["G12_sdpd"] == pytest.approx(181.0, rel=0.25)
        assert h["G12_sypd"] == pytest.approx(0.5, rel=0.3)
        assert h["G11S_sypd"] == pytest.approx(1.35, rel=0.3)


class TestWeakScaling:
    def test_ladder_matches_fig10(self):
        assert WEAK_SCALING_LADDER[0] == ("G6", 128)
        assert WEAK_SCALING_LADDER[-1] == ("G12", 524288)

    def test_constant_per_cg_load(self):
        for grid_label, nprocs in WEAK_SCALING_LADDER:
            cells = TABLE2_GRIDS[grid_label].cells / nprocs
            assert cells == pytest.approx(320.0, rel=0.02)

    def test_efficiency_declines_monotonically(self, weak):
        for pts in weak.values():
            effs = [p.efficiency for p in pts]
            assert effs[0] == 1.0
            assert all(b <= a + 1e-9 for a, b in zip(effs, effs[1:]))
            assert 0.5 < effs[-1] < 0.9

    def test_comm_share_rises_19_to_37_percent(self, weak):
        """Section 4.7: 'The proportion of communication time rises from
        19% to 37%' — reproduce the band and the direction."""
        pts = weak["MIX-PHY"]
        assert pts[0].comm_fraction == pytest.approx(0.19, abs=0.05)
        assert pts[-1].comm_fraction == pytest.approx(0.37, abs=0.08)
        assert pts[-1].comm_fraction > pts[0].comm_fraction

    def test_drop_at_32768_cgs(self, weak):
        """'a clear drop of scalability at the scale of 32,768 CGs'."""
        pts = weak["MIX-PHY"]
        effs = {p.nprocs: p.efficiency for p in pts}
        drop_here = effs[8192] - effs[32768]
        drop_before = effs[2048] - effs[8192]
        assert drop_here > drop_before

    def test_ml_outperforms_conventional(self, weak):
        """Section 4.7: 'the AI-enhanced model (MIX-ML) outperforms the
        one with conventional parameterizations (MIX-PHY)'."""
        for ml, phy in zip(weak["MIX-ML"], weak["MIX-PHY"]):
            assert ml.sdpd > phy.sdpd


class TestStrongScaling:
    def test_proc_range_matches_fig11(self):
        assert STRONG_SCALING_PROCS[0] == 32768
        assert STRONG_SCALING_PROCS[-1] == 524288

    def test_sdpd_increases_with_procs(self, strong):
        for pts in strong.values():
            sdpds = [p.sdpd for p in pts]
            assert all(b > a for a, b in zip(sdpds, sdpds[1:]))

    def test_efficiency_decreases(self, strong):
        """G12: 'a continuous decrease in scaling efficiency'."""
        pts = strong[("G12", "MIX-ML")]
        effs = [p.efficiency for p in pts]
        assert all(b < a for a, b in zip(effs, effs[1:]))

    def test_scheme_ordering_at_scale(self, strong):
        """MIX > DP and ML > PHY at every G12 point."""
        for i in range(len(STRONG_SCALING_PROCS)):
            dp_phy = strong[("G12", "DP-PHY")][i].sdpd
            dp_ml = strong[("G12", "DP-ML")][i].sdpd
            mix_phy = strong[("G12", "MIX-PHY")][i].sdpd
            mix_ml = strong[("G12", "MIX-ML")][i].sdpd
            assert mix_ml > mix_phy > dp_phy
            assert dp_ml > dp_phy

    def test_g11s_diminishing_increments(self, strong):
        """G11S saturates: increments shrink toward the right of Fig. 11."""
        pts = strong[("G11S", "MIX-ML")]
        gains = [b.sdpd / a.sdpd for a, b in zip(pts, pts[1:])]
        assert gains[0] > gains[-1]
        assert gains[-1] > 1.0               # still improving at 524288

    def test_g11s_faster_than_g12(self, strong):
        for i in range(len(STRONG_SCALING_PROCS)):
            assert strong[("G11S", "MIX-ML")][i].sdpd > strong[("G12", "MIX-ML")][i].sdpd


class TestReuseModel:
    def test_reuse_steps_monotone(self):
        p = PerfParams()
        thresholds = [t for t, _ in p.reuse_steps]
        factors = [f for _, f in p.reuse_steps]
        assert thresholds == sorted(thresholds)
        assert factors == sorted(factors)
        assert all(0 < f <= 1 for f in factors)

    def test_reuse_factor_improves_at_small_slices(self, model):
        small = model._reuse_factor(80, 30, 4.5)
        large = model._reuse_factor(5120, 30, 4.5)
        assert small < large
