"""Unit tests of the batching inference proxy (repro.serve.batch).

The batcher's contract is *bitwise conservatism*: coalescing concurrent
``predict`` calls may only switch to stacked execution when its probe
proved that stacking changes no output bits at this workload's shapes;
otherwise it must degrade to back-to-back solo calls.  Either way every
caller gets exactly the rows for its own input.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.serve import BatchedRadiationNet, BatchedTendencyNet, InferenceBatcher


def _row_independent(x: np.ndarray) -> np.ndarray:
    """A forward whose per-row output never depends on batch size."""
    return np.tanh(x) * 2.0 + 1.0


def _shape_dependent(x: np.ndarray) -> np.ndarray:
    """A forward whose output bits depend on the batch size — models the
    BLAS-blocking hazard the probe exists to catch."""
    return x * (1.0 + 1e-12 * x.shape[0])


def _concurrent_submit(batcher: InferenceBatcher, inputs: list[np.ndarray],
                       workers: int | None = None) -> list[np.ndarray]:
    """Release submissions through a barrier so they co-schedule.

    The barrier is sized to the worker count (oversubscribed inputs just
    queue up behind it), so every wave of submissions arrives together.
    """
    workers = workers or len(inputs)
    barrier = threading.Barrier(min(workers, len(inputs)))

    def call(x):
        barrier.wait()
        return batcher.submit(x)

    with ThreadPoolExecutor(max_workers=workers) as ex:
        return list(ex.map(call, inputs))


class TestInferenceBatcher:
    def test_solo_submit_matches_forward(self):
        b = InferenceBatcher(_row_independent, max_batch=4)
        x = np.arange(12.0).reshape(3, 4)
        assert np.array_equal(b.submit(x), _row_independent(x))
        assert b.stacking is True  # probe ran on first input

    def test_probe_enables_stacking_when_safe(self):
        b = InferenceBatcher(_row_independent, max_batch=4,
                             window_seconds=0.5)
        rng = np.random.default_rng(0)
        inputs = [rng.normal(size=(5, 3)) for _ in range(8)]
        outs = _concurrent_submit(b, inputs)
        for x, out in zip(inputs, outs):
            assert np.array_equal(out, _row_independent(x))
        assert b.stacking is True
        stats = b.stats()
        assert stats["items"] == 8
        # With a generous window at least one batch coalesced.
        assert stats["max_batch_seen"] >= 2
        assert stats["stacked_items"] >= 2

    def test_probe_disables_stacking_when_unsafe(self):
        b = InferenceBatcher(_shape_dependent, max_batch=4,
                             window_seconds=0.5)
        rng = np.random.default_rng(1)
        inputs = [rng.normal(size=(5, 3)) for _ in range(8)]
        outs = _concurrent_submit(b, inputs)
        # Sequential fallback: every answer is the SOLO forward's bits.
        for x, out in zip(inputs, outs):
            assert np.array_equal(out, _shape_dependent(x))
        assert b.stacking is False
        assert b.stats()["stacked_items"] == 0

    def test_rows_never_cross_between_callers(self):
        """Each caller's rows come back exactly, under heavy contention
        and distinct row counts."""
        b = InferenceBatcher(_row_independent, max_batch=4,
                             window_seconds=0.05)
        rng = np.random.default_rng(2)
        inputs = [rng.normal(size=(1 + i % 5, 3)) for i in range(24)]
        outs = _concurrent_submit(b, inputs, workers=8)
        for x, out in zip(inputs, outs):
            assert out.shape == x.shape
            assert np.array_equal(out, _row_independent(x))
        assert b.stats()["items"] == 24

    def test_error_propagates_to_every_waiter(self):
        calls = {"n": 0}

        def bad(x):
            calls["n"] += 1
            raise RuntimeError("net exploded")

        b = InferenceBatcher(bad, max_batch=4, window_seconds=0.5)
        inputs = [np.ones((2, 2)) for _ in range(4)]
        barrier = threading.Barrier(4)
        errors = []

        def call(x):
            barrier.wait()
            try:
                b.submit(x)
            except RuntimeError as exc:
                errors.append(str(exc))

        with ThreadPoolExecutor(max_workers=4) as ex:
            list(ex.map(call, inputs))
        assert errors == ["net exploded"] * 4

    def test_batcher_usable_after_error(self):
        flip = {"fail": True}

        def flaky(x):
            if flip["fail"]:
                raise RuntimeError("once")
            return _row_independent(x)

        b = InferenceBatcher(flaky, max_batch=2)
        with pytest.raises(RuntimeError):
            b.submit(np.ones((2, 2)))
        flip["fail"] = False
        x = np.ones((2, 2))
        assert np.array_equal(b.submit(x), _row_independent(x))

    def test_max_batch_bounds_coalescing(self):
        b = InferenceBatcher(_row_independent, max_batch=2,
                             window_seconds=0.2)
        inputs = [np.full((2, 2), float(i)) for i in range(6)]
        outs = _concurrent_submit(b, inputs)
        for x, out in zip(inputs, outs):
            assert np.array_equal(out, _row_independent(x))
        assert b.stats()["max_batch_seen"] <= 2

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            InferenceBatcher(_row_independent, max_batch=0)


class TestBatchedNetProxies:
    def test_tendency_proxy_matches_direct(self):
        from repro.dycore.vertical import VerticalCoordinate
        from repro.ml.suite import MLPhysicsSuite

        vc = VerticalCoordinate.stretched(8)
        suite = MLPhysicsSuite.seeded(None, vc, surface=None)
        tn = suite.tendency_net
        proxy = BatchedTendencyNet(
            tn, InferenceBatcher(tn.predict, max_batch=2)
        )
        rng = np.random.default_rng(3)
        u, v = rng.normal(10, 3, (6, 8)), rng.normal(0, 3, (6, 8))
        t = rng.normal(270, 10, (6, 8))
        q = np.abs(rng.normal(0, 3e-3, (6, 8)))
        p = rng.uniform(2e4, 1e5, (6, 8))
        q1, q2 = proxy.predict_q1q2(u, v, t, q, p)
        q1d, q2d = tn.predict_q1q2(u, v, t, q, p)
        assert np.array_equal(q1, q1d) and np.array_equal(q2, q2d)
        # Non-predict attributes delegate to the shared net.
        assert proxy.nlev == tn.nlev

    def test_radiation_proxy_matches_direct(self):
        from repro.dycore.vertical import VerticalCoordinate
        from repro.ml.suite import MLPhysicsSuite

        vc = VerticalCoordinate.stretched(8)
        suite = MLPhysicsSuite.seeded(None, vc, surface=None)
        rn = suite.radiation_net
        proxy = BatchedRadiationNet(
            rn, InferenceBatcher(rn.predict, max_batch=2)
        )
        rng = np.random.default_rng(4)
        t = rng.normal(270, 10, (6, 8))
        q = np.abs(rng.normal(0, 3e-3, (6, 8)))
        tskin = rng.normal(285, 5, 6)
        coszr = rng.uniform(0, 1, 6)
        gsw, glw = proxy.predict_gsw_glw(t, q, tskin, coszr)
        gswd, glwd = rn.predict_gsw_glw(t, q, tskin, coszr)
        assert np.array_equal(gsw, gswd) and np.array_equal(glw, glwd)
