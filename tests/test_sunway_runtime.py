"""Tests of the SW26010P spec, omnicopy/DMA, the SWGOMP job server, and
the kernel timing model."""

import numpy as np
import pytest

from repro.sunway.arch import (
    CORES_PER_CG,
    MAX_SCALING_CGS,
    MAX_SCALING_CORES,
    SYSTEM_CORES,
    CoreGroup,
    SW26010P,
)
from repro.sunway.dma import MemorySpace, ldm_capacity_arrays, omnicopy
from repro.sunway.kernel import Engine, KernelSpec, KernelTimer, Precision
from repro.sunway.swgomp import JobServer, TargetRegion


class TestArchSpec:
    def test_cores_per_processor(self):
        assert SW26010P().cores == 390          # 6 CGs x (1 MPE + 64 CPEs)

    def test_system_scale_numbers(self):
        assert SYSTEM_CORES == 41_932_800       # section 4.1
        assert MAX_SCALING_CGS == 524_288
        assert MAX_SCALING_CORES == 34_078_720  # the title's "34 million"
        assert CORES_PER_CG == 65

    def test_cg_memory(self):
        cg = CoreGroup()
        assert cg.main_memory_bytes == 16 * 1024**3
        assert cg.memory_bandwidth == 51.2e9

    def test_bandwidth_share(self):
        cg = CoreGroup()
        assert cg.cpe_bandwidth_share(64) == pytest.approx(51.2e9 / 64)
        assert cg.cpe_bandwidth_share(1) == cg.cpe.dma_peak

    def test_sp_equals_dp_peak(self):
        """Paper: no SP FLOPs advantage except division/elementals."""
        cg = CoreGroup()
        assert cg.cpe.flops_sp == cg.cpe.flops_dp
        assert cg.cpe.div_cycles_sp < cg.cpe.div_cycles_dp


class TestOmnicopy:
    def test_memcpy_within_main(self):
        src = np.arange(100.0)
        dst = np.empty(100)
        rec = omnicopy(dst, src)
        np.testing.assert_array_equal(dst, src)
        assert rec.engine == "memcpy"

    def test_dma_when_crossing(self):
        src = np.arange(64.0)
        dst = np.empty(64)
        rec = omnicopy(dst, src, dst_space=MemorySpace.LDM, src_space=MemorySpace.MAIN)
        assert rec.engine == "dma"
        assert rec.seconds > 0

    def test_ldm_capacity_enforced(self):
        big = np.zeros(130 * 1024 // 8 + 16)
        with pytest.raises(MemoryError):
            omnicopy(big.copy(), big, dst_space=MemorySpace.LDM)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            omnicopy(np.zeros(3), np.zeros(4))

    def test_capacity_helper(self):
        assert ldm_capacity_arrays(4, 8, 1000)
        assert not ldm_capacity_arrays(20, 8, 10000)


class TestJobServer:
    def test_requires_mpe_init(self):
        srv = JobServer()
        with pytest.raises(RuntimeError):
            srv.spawn("mpe", 0, "team_head")

    def test_target_region_spawns_team_heads(self):
        srv = JobServer()
        srv.init_from_mpe()
        TargetRegion(srv, n_teams=4)
        heads = [e for e in srv.spawn_log if e.role == "team_head"]
        assert len(heads) == 4
        assert all(e.spawner == "mpe" for e in heads)

    def test_parallel_for_executes_whole_range(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv, n_teams=1)
        out = np.zeros(1000)

        def body(s, e):
            out[s:e] += 1.0

        region.parallel_for(body, 1000)
        np.testing.assert_array_equal(out, 1.0)

    def test_team_members_spawned_by_heads(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv, n_teams=2)
        region.parallel_for(lambda s, e: None, 64)
        members = [e for e in srv.spawn_log if e.role == "team_member"]
        assert len(members) == 62            # 64 CPEs minus 2 heads
        assert all(e.spawner.startswith("cpe") for e in members)

    def test_static_schedule_balanced(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv)
        region.parallel_for(lambda s, e: None, 64_000, cost_per_elem=1e-9)
        assert srv.utilization() > 0.99

    def test_dynamic_schedule_balances_skewed_cost(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv)

        def cost(s, e):
            # Heavily skewed: late elements 100x more expensive.
            return sum(1e-9 * (100.0 if i > 60_000 else 1.0) for i in (s,)) * (e - s)

        t_static = region.parallel_for(lambda s, e: None, 64_000, cost_per_elem=cost,
                                       schedule="static")
        srv2 = JobServer()
        srv2.init_from_mpe()
        region2 = TargetRegion(srv2)
        t_dyn = region2.parallel_for(lambda s, e: None, 64_000, cost_per_elem=cost,
                                     schedule="dynamic", chunk=500)
        assert t_dyn < t_static

    def test_workshare(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv)
        arr = np.ones(500)

        region.workshare(lambda sl: arr.__setitem__(sl, 0.0), arr.size)
        np.testing.assert_array_equal(arr, 0.0)

    def test_empty_range(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv)
        assert region.parallel_for(lambda s, e: None, 0) == 0.0

    def test_bad_schedule(self):
        srv = JobServer()
        srv.init_from_mpe()
        region = TargetRegion(srv)
        with pytest.raises(ValueError):
            region.parallel_for(lambda s, e: None, 10, schedule="guided2")

    def test_broken_chunk_observer_raises_swgomp_error(self):
        """A crashing observer must surface as SWGOMPError naming the
        observer — never be swallowed into a bogus sanitizer verdict."""
        from repro.sunway.swgomp import SWGOMPError

        class Broken:
            def begin_chunk(self, cpe, start, end):
                raise ValueError("shadow state corrupt")

            def end_chunk(self, cpe, start, end):
                pass

        srv = JobServer()
        srv.init_from_mpe()
        srv.chunk_observers.append(Broken())
        region = TargetRegion(srv)
        with pytest.raises(SWGOMPError) as ei:
            region.parallel_for(lambda s, e: None, 64)
        msg = str(ei.value)
        assert "Broken.begin_chunk" in msg
        assert "ValueError" in msg
        assert "shadow state corrupt" in msg
        assert isinstance(ei.value.__cause__, ValueError)

    def test_observer_swgomp_error_passes_through(self):
        from repro.sunway.swgomp import SWGOMPError

        class Strict:
            def begin_chunk(self, cpe, start, end):
                raise SWGOMPError("already the right type")

            def end_chunk(self, cpe, start, end):
                pass

        srv = JobServer()
        srv.init_from_mpe()
        srv.chunk_observers.append(Strict())
        region = TargetRegion(srv)
        with pytest.raises(SWGOMPError, match="already the right type"):
            region.parallel_for(lambda s, e: None, 64)

    def test_broken_end_chunk_observer_named(self):
        from repro.sunway.swgomp import SWGOMPError

        class BadEnd:
            def begin_chunk(self, cpe, start, end):
                pass

            def end_chunk(self, cpe, start, end):
                raise KeyError("missing log")

        srv = JobServer()
        srv.init_from_mpe()
        srv.chunk_observers.append(BadEnd())
        region = TargetRegion(srv)
        with pytest.raises(SWGOMPError, match="BadEnd.end_chunk"):
            region.parallel_for(lambda s, e: None, 64)

    def test_server_tracer_records_region_and_chunks(self):
        from repro.obs import SpanKind, Tracer

        srv = JobServer()
        srv.init_from_mpe()
        srv.tracer = Tracer()
        region = TargetRegion(srv)
        region.parallel_for(lambda s, e: None, 640, cost_per_elem=1e-9,
                            name="my_kernel")
        seq = srv.tracer.span_sequence()
        assert seq[0] == ("kernel_launch", "my_kernel")
        assert seq.count(("chunk", "my_kernel")) == srv.cg.n_cpes
        region_span = next(
            s for s in srv.tracer.events if s.kind is SpanKind.KERNEL_LAUNCH
        )
        assert region_span.sim_seconds == pytest.approx(640 * 1e-9 / 64)
        chunk = next(s for s in srv.tracer.events if s.kind is SpanKind.CHUNK)
        assert chunk.cpe is not None
        assert chunk.args["end"] > chunk.args["start"]


class TestFastPathAccounting:
    """The vectorized static-schedule fast path must be accounting-
    equivalent to the per-chunk reference (``server.vectorized = False``)
    and must stand down whenever any per-chunk contract is in play."""

    @staticmethod
    def _launch(vectorized, n, cost, observers=(), tracer=None):
        srv = JobServer()
        srv.vectorized = vectorized
        srv.init_from_mpe()
        srv.chunk_observers.extend(observers)
        if tracer is not None:
            srv.tracer = tracer
        region = TargetRegion(srv)
        buf = np.zeros(max(n, 1))
        t = region.parallel_for(
            lambda s, e: buf[s:e].__iadd__(1.0), n, cost_per_elem=cost
        )
        return srv, buf, t

    @pytest.mark.parametrize("n", [0, 3, 64, 1000, 64_001])
    def test_scalar_cost_accounting_bitwise(self, n):
        srv_f, buf_f, t_f = self._launch(True, n, 1.25e-9)
        srv_r, buf_r, t_r = self._launch(False, n, 1.25e-9)
        assert t_f == t_r
        assert [c.busy_seconds for c in srv_f.cpes] == \
            [c.busy_seconds for c in srv_r.cpes]
        assert [c.chunks_executed for c in srv_f.cpes] == \
            [c.chunks_executed for c in srv_r.cpes]
        np.testing.assert_array_equal(buf_f, buf_r)

    def test_callable_cost_accounting_bitwise(self):
        def cost(s, e):
            return 1e-9 * (e - s) * (1.0 + 0.01 * s)

        srv_f, _, t_f = self._launch(True, 10_000, cost)
        srv_r, _, t_r = self._launch(False, 10_000, cost)
        assert t_f == t_r
        assert [c.busy_seconds for c in srv_f.cpes] == \
            [c.busy_seconds for c in srv_r.cpes]

    def test_observers_force_reference_path(self):
        """Chunk observers must still see every chunk — the fast path
        stands down rather than skipping the begin/end callbacks."""
        events = []

        class Recorder:
            def begin_chunk(self, cpe, start, end):
                events.append(("b", cpe, start, end))

            def end_chunk(self, cpe, start, end):
                events.append(("e", cpe, start, end))

        srv, _, _ = self._launch(True, 640, 1e-9, observers=[Recorder()])
        n_chunks = sum(c.chunks_executed for c in srv.cpes)
        assert len(events) == 2 * n_chunks
        assert n_chunks == srv.cg.n_cpes

    def test_tracer_forces_reference_path(self):
        from repro.obs import SpanKind, Tracer

        tracer = Tracer()
        srv, _, _ = self._launch(True, 640, 1e-9, tracer=tracer)
        chunks = [s for s in tracer.events if s.kind is SpanKind.CHUNK]
        assert len(chunks) == srv.cg.n_cpes

    def test_static_bounds_cached_and_frozen(self):
        from repro.sunway.swgomp import _static_bounds

        b1 = _static_bounds(1000, 64)
        b2 = _static_bounds(1000, 64)
        assert b1 is b2                      # lru_cache hit
        assert not b1.flags.writeable
        assert b1[0] == 0 and b1[-1] == 1000
        with pytest.raises(ValueError):
            b1[0] = 5


class TestKernelTimer:
    def setup_method(self):
        self.timer = KernelTimer()
        self.spec = KernelSpec(
            "k", flops_per_elem=20, arrays_streamed=8,
            divisions_per_elem=1.0, mixed_data_fraction=0.9,
            mixed_flop_fraction=0.9,
        )

    def test_zero_elements(self):
        t = self.timer.time(self.spec, 0, Engine.CPE_ARRAY)
        assert t.seconds == 0.0

    def test_cpe_faster_than_mpe(self):
        n = 100_000
        t_mpe = self.timer.time(self.spec, n, Engine.MPE)
        t_cpe = self.timer.time(self.spec, n, Engine.CPE_ARRAY, distributed=True)
        assert t_cpe.seconds < t_mpe.seconds

    def test_mpe_compute_bound_cpe_memory_bound(self):
        """The paper's section 4.6 observation."""
        n = 100_000
        t_mpe = self.timer.time(self.spec, n, Engine.MPE)
        t_cpe = self.timer.time(self.spec, n, Engine.CPE_ARRAY, distributed=True)
        assert t_mpe.bound == "compute"
        assert t_cpe.bound == "memory"

    def test_distribution_helps_many_array_kernels(self):
        n = 100_000
        t_thrash = self.timer.time(self.spec, n, Engine.CPE_ARRAY, distributed=False)
        t_dist = self.timer.time(self.spec, n, Engine.CPE_ARRAY, distributed=True)
        assert t_dist.seconds < t_thrash.seconds
        assert t_dist.hit_ratio > t_thrash.hit_ratio

    def test_distribution_noop_for_few_arrays(self):
        spec = KernelSpec("s", flops_per_elem=10, arrays_streamed=3)
        n = 100_000
        t1 = self.timer.time(spec, n, Engine.CPE_ARRAY, distributed=False)
        t2 = self.timer.time(spec, n, Engine.CPE_ARRAY, distributed=True)
        assert t1.seconds == t2.seconds

    def test_mixed_precision_helps_memory_bound(self):
        n = 100_000
        t_dp = self.timer.time(self.spec, n, Engine.CPE_ARRAY, Precision.DP, True)
        t_mx = self.timer.time(self.spec, n, Engine.CPE_ARRAY, Precision.MIXED, True)
        assert t_mx.seconds < t_dp.seconds

    def test_mixed_no_data_fraction_no_memory_gain(self):
        spec = KernelSpec("c", flops_per_elem=10, arrays_streamed=3,
                          mixed_data_fraction=0.0)
        n = 100_000
        t_dp = self.timer.time(spec, n, Engine.CPE_ARRAY, Precision.DP, True)
        t_mx = self.timer.time(spec, n, Engine.CPE_ARRAY, Precision.MIXED, True)
        assert t_mx.seconds == t_dp.seconds

    def test_fig9_speedup_band(self):
        """AE appendix: ~20-70x for major kernels (optimised variant)."""
        from repro.dycore.kernels import MAJOR_KERNELS

        n = 41_000 * 30
        for reg in MAJOR_KERNELS.values():
            s = self.timer.speedup_vs_mpe_dp(reg.spec, n, Precision.MIXED, True)
            assert 10.0 < s < 80.0, f"{reg.spec.name}: {s}"

    def test_division_heavy_kernel_gains_most_from_mixed(self):
        div_heavy = KernelSpec("d", flops_per_elem=20, arrays_streamed=4,
                               divisions_per_elem=3.0, specials_per_elem=1.0,
                               mixed_data_fraction=0.5, mixed_flop_fraction=1.0)
        div_free = KernelSpec("f", flops_per_elem=20, arrays_streamed=4,
                              divisions_per_elem=0.0,
                              mixed_data_fraction=0.5, mixed_flop_fraction=1.0)
        n = 50_000
        def gain(spec):
            dp = self.timer.time(spec, n, Engine.MPE, Precision.DP).seconds
            mx = self.timer.time(spec, n, Engine.MPE, Precision.MIXED).seconds
            return dp / mx
        assert gain(div_heavy) > gain(div_free)

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            self.timer.time(self.spec, -1, Engine.MPE)
